"""Sharing-pattern recording: the protocol-level analytics stream.

Where :mod:`repro.obs.spans` answers *"where did the time go?"*,
:mod:`repro.obs.sharing` answers *"why is the memory system busy?"* — it
records, per page × per rank over virtual time, the protocol stream the DSM
substrates already generate (faults, fetches, write notices, invalidations,
protection-state transitions, remote SCI transactions) plus the sync layer's
per-lock wait/hold times and barrier arrival skew. The detectors and
exporters that turn the stream into a diagnosis live in
:mod:`repro.obs.diagnose`.

The module follows the :data:`~repro.obs.spans.NULL_OBS` discipline exactly:

* **Zero cost when disabled.** Every engine carries the shared
  :data:`NULL_SHARING` sentinel; instrumentation sites guard on
  ``engine.sharing.enabled`` and skip all field computation when it is
  False. Nothing here ever charges virtual time, so disabled runs are
  bit-identical (enforced by ``repro.bench.diffcheck``).
* **Host-side only when enabled.** The recorder appends to plain Python
  structures; it never schedules events, touches node clocks, or perturbs
  the protocol — an instrumented run's virtual timeline equals the
  uninstrumented one.
* **Determinism.** The engine's strict hand-off means events arrive in a
  seeded run's canonical order; two runs of the same scenario produce an
  identical stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["NullSharing", "NULL_SHARING", "SharingRecorder",
           "PageSharing", "LockSharing", "merge_interval"]

#: event-kind codes used in the flat stream (heatmap/export feed)
KIND_READ_FAULT = "fault.r"
KIND_WRITE_FAULT = "fault.w"
KIND_FETCH = "fetch"
KIND_INVALIDATE = "inval"
KIND_DOWNGRADE = "downgrade"
KIND_NOTICE = "notice"
KIND_REMOTE_READ = "remote.r"
KIND_REMOTE_WRITE = "remote.w"


class NullSharing:
    """Sharing recorder that records nothing and allocates nothing.

    Installed as every engine's default ``sharing`` attribute so
    instrumentation sites can exist unconditionally; hot paths check
    ``enabled`` and skip everything when it is False.
    """

    enabled = False

    def access(self, rank: int, page: int, lo: int, hi: int,
               write: bool) -> None:
        return None

    def fault(self, rank: int, page: int, write: bool, t: float) -> None:
        return None

    def fetch(self, rank: int, page: int, home: int, nbytes: int,
              t: float) -> None:
        return None

    def notice(self, page: int, writer: int, t: float) -> None:
        return None

    def transition(self, rank: int, page: int, old: int, new: int,
                   t: float) -> None:
        return None

    def remote(self, rank: int, page: int, home: int, write: bool,
               nbytes: int, t: float) -> None:
        return None

    def lock_acquired(self, lock_id: int, rank: int, t_request: float,
                      t_acquired: float) -> None:
        return None

    def lock_released(self, lock_id: int, rank: int, t_released: float) -> None:
        return None

    def barrier(self, rank: int, t_arrive: float, t_depart: float) -> None:
        return None


#: Shared do-nothing recorder; safe to share because it holds no state.
NULL_SHARING = NullSharing()


def merge_interval(intervals: List[List[int]], lo: int, hi: int) -> None:
    """Merge half-open ``[lo, hi)`` into a sorted disjoint interval list,
    in place. Interval lists stay tiny (sub-page write extents), so the
    linear scan is cheaper than an interval tree."""
    if hi <= lo:
        return
    out: List[List[int]] = []
    placed = False
    for iv in intervals:
        if iv[1] < lo or iv[0] > hi:     # disjoint, not even adjacent
            if not placed and iv[0] > hi:
                out.append([lo, hi])
                placed = True
            out.append(iv)
        else:                            # overlapping or adjacent: absorb
            lo = min(lo, iv[0])
            hi = max(hi, iv[1])
    if not placed:
        out.append([lo, hi])
        out.sort()
    intervals[:] = out


class PageSharing:
    """Accumulated sharing state of one global page."""

    __slots__ = ("page", "read_faults", "write_faults", "fetches",
                 "fetch_bytes", "invalidations", "downgrades", "notices",
                 "remote_reads", "remote_writes", "reads", "writes",
                 "by_rank", "write_ranges", "writer_log", "writer_events",
                 "first_write_t", "last_write_t")

    def __init__(self, page: int) -> None:
        self.page = page
        self.read_faults = 0
        self.write_faults = 0
        self.fetches = 0
        self.fetch_bytes = 0
        self.invalidations = 0
        self.downgrades = 0
        self.notices = 0
        self.remote_reads = 0
        self.remote_writes = 0
        self.reads = 0
        self.writes = 0
        #: rank -> per-rank protocol event counts
        self.by_rank: Dict[int, Dict[str, int]] = {}
        #: rank -> sorted disjoint [lo, hi) byte intervals written, page-local
        self.write_ranges: Dict[int, List[List[int]]] = {}
        #: compressed writer-alternation log: (t, rank), appended only when
        #: the writing rank changes — ping-pong evidence in O(alternations)
        self.writer_log: List[Tuple[float, int]] = []
        self.writer_events = 0
        self.first_write_t: Optional[float] = None
        self.last_write_t: Optional[float] = None

    def protocol_events(self) -> int:
        return (self.read_faults + self.write_faults + self.fetches
                + self.invalidations + self.downgrades + self.notices
                + self.remote_reads + self.remote_writes)

    def rank_count(self, rank: int, key: str, n: int = 1) -> None:
        counts = self.by_rank.get(rank)
        if counts is None:
            counts = self.by_rank[rank] = {}
        counts[key] = counts.get(key, 0) + n

    def page_write(self, rank: int, t: float) -> None:
        """Feed the writer-alternation log (protocol-level write events:
        JiaJia write notices, SCI-VM remote writes)."""
        self.writer_events += 1
        if self.first_write_t is None:
            self.first_write_t = t
        self.last_write_t = t
        log = self.writer_log
        if not log or log[-1][1] != rank:
            log.append((t, rank))

    @property
    def alternations(self) -> int:
        """Number of times the writing rank changed hands."""
        return max(0, len(self.writer_log) - 1)


class LockSharing:
    """Accumulated wait/hold profile of one global lock."""

    __slots__ = ("lock_id", "acquires", "contended", "wait_total",
                 "wait_max", "hold_total", "hold_max", "by_rank",
                 "wait_hist", "hold_hist", "_held_at")

    def __init__(self, lock_id: int) -> None:
        self.lock_id = lock_id
        self.acquires = 0
        self.contended = 0
        self.wait_total = 0.0
        self.wait_max = 0.0
        self.hold_total = 0.0
        self.hold_max = 0.0
        self.by_rank: Dict[int, int] = {}
        #: log-scale histograms: bucket exponent -> count (see _bucket)
        self.wait_hist: Dict[int, int] = {}
        self.hold_hist: Dict[int, int] = {}
        self._held_at: Dict[int, float] = {}  # rank -> acquire time

    @staticmethod
    def _bucket(seconds: float) -> int:
        """Power-of-ten bucket exponent: 3e-6 s -> -6, 0.2 s -> -1.
        Sub-100ns times collapse into the -8 bucket; zero stays at -9."""
        if seconds <= 0:
            return -9
        exp = -8
        edge = 1e-8
        while seconds >= edge * 10 and exp < 2:
            edge *= 10
            exp += 1
        return exp


class SharingRecorder:
    """Collects the per-page / per-lock sharing stream of one simulation.

    All methods are host-side appends; see the module docstring for the
    invariants. ``max_events`` caps the flat event stream (the heatmap
    feed); aggregates keep counting after the cap, and ``dropped`` records
    how many stream entries were discarded.
    """

    enabled = True

    def __init__(self, engine, max_events: int = 1_000_000) -> None:
        self.engine = engine
        self.pages: Dict[int, PageSharing] = {}
        self.locks: Dict[int, LockSharing] = {}
        #: flat (t, kind, page, rank) stream for heatmaps/traces
        self.events: List[Tuple[float, str, int, int]] = []
        self.max_events = max_events
        self.dropped = 0
        #: barrier episodes: index -> {"arrive": {rank: t}, "depart": {rank: t}}
        self.barrier_episodes: List[Dict[str, Dict[int, float]]] = []
        self._barrier_index: Dict[int, int] = {}

    # ------------------------------------------------------------- plumbing
    def _page(self, page: int) -> PageSharing:
        ps = self.pages.get(page)
        if ps is None:
            ps = self.pages[page] = PageSharing(page)
        return ps

    def _lock(self, lock_id: int) -> LockSharing:
        ls = self.locks.get(lock_id)
        if ls is None:
            ls = self.locks[lock_id] = LockSharing(lock_id)
        return ls

    def _emit(self, t: float, kind: str, page: int, rank: int) -> None:
        if len(self.events) < self.max_events:
            self.events.append((t, kind, page, rank))
        else:
            self.dropped += 1

    # ------------------------------------------------------ page-level feed
    def access(self, rank: int, page: int, lo: int, hi: int,
               write: bool) -> None:
        """Sub-page access extent ``[lo, hi)`` (page-local byte offsets),
        from the span/run information the access path already computes.
        Writes feed the per-rank written-range map the false-sharing
        detector intersects."""
        ps = self._page(page)
        if write:
            ps.writes += 1
            ranges = ps.write_ranges.get(rank)
            if ranges is None:
                ranges = ps.write_ranges[rank] = []
            merge_interval(ranges, lo, hi)
        else:
            ps.reads += 1

    def fault(self, rank: int, page: int, write: bool, t: float) -> None:
        ps = self._page(page)
        if write:
            ps.write_faults += 1
            ps.rank_count(rank, "write_faults")
            self._emit(t, KIND_WRITE_FAULT, page, rank)
        else:
            ps.read_faults += 1
            ps.rank_count(rank, "read_faults")
            self._emit(t, KIND_READ_FAULT, page, rank)

    def fetch(self, rank: int, page: int, home: int, nbytes: int,
              t: float) -> None:
        ps = self._page(page)
        ps.fetches += 1
        ps.fetch_bytes += nbytes
        ps.rank_count(rank, "fetches")
        self._emit(t, KIND_FETCH, page, rank)

    def notice(self, page: int, writer: int, t: float) -> None:
        """A write notice announced ``writer`` modified ``page`` this
        interval — the protocol's own ownership/owner-migration stream."""
        ps = self._page(page)
        ps.notices += 1
        ps.rank_count(writer, "notices")
        ps.page_write(writer, t)
        self._emit(t, KIND_NOTICE, page, writer)

    def transition(self, rank: int, page: int, old: int, new: int,
                   t: float) -> None:
        """PageTable protection-state transition (states are
        :class:`~repro.memory.page.PageState` ints). Invalidation and
        downgrade counts come from here, so every protocol path that drops
        protection is covered without per-call-site hooks."""
        if new == 0 and old != 0:                 # -> INVALID
            ps = self._page(page)
            ps.invalidations += 1
            ps.rank_count(rank, "invalidations")
            self._emit(t, KIND_INVALIDATE, page, rank)
        elif new == 1 and old == 2:               # READ_WRITE -> READ_ONLY
            ps = self._page(page)
            ps.downgrades += 1
            ps.rank_count(rank, "downgrades")
            self._emit(t, KIND_DOWNGRADE, page, rank)

    def remote(self, rank: int, page: int, home: int, write: bool,
               nbytes: int, t: float) -> None:
        """SCI-VM hardware transaction against a remote home page."""
        ps = self._page(page)
        if write:
            ps.remote_writes += 1
            ps.rank_count(rank, "remote_writes")
            ps.page_write(rank, t)
            self._emit(t, KIND_REMOTE_WRITE, page, rank)
        else:
            ps.remote_reads += 1
            ps.rank_count(rank, "remote_reads")
            self._emit(t, KIND_REMOTE_READ, page, rank)

    # ------------------------------------------------------ sync-level feed
    def lock_acquired(self, lock_id: int, rank: int, t_request: float,
                      t_acquired: float) -> None:
        ls = self._lock(lock_id)
        wait = max(0.0, t_acquired - t_request)
        ls.acquires += 1
        ls.by_rank[rank] = ls.by_rank.get(rank, 0) + 1
        ls.wait_total += wait
        if wait > ls.wait_max:
            ls.wait_max = wait
        if wait > 0:
            ls.contended += 1
        b = LockSharing._bucket(wait)
        ls.wait_hist[b] = ls.wait_hist.get(b, 0) + 1
        ls._held_at[rank] = t_acquired

    def lock_released(self, lock_id: int, rank: int, t_released: float) -> None:
        ls = self._lock(lock_id)
        t_acq = ls._held_at.pop(rank, None)
        if t_acq is None:
            return
        hold = max(0.0, t_released - t_acq)
        ls.hold_total += hold
        if hold > ls.hold_max:
            ls.hold_max = hold
        b = LockSharing._bucket(hold)
        ls.hold_hist[b] = ls.hold_hist.get(b, 0) + 1

    def barrier(self, rank: int, t_arrive: float, t_depart: float) -> None:
        """One rank's passage through a global barrier. Barriers are
        global and in program order per rank, so the rank's episode index
        is simply how many barriers it has completed."""
        episode = self._barrier_index.get(rank, 0)
        self._barrier_index[rank] = episode + 1
        while len(self.barrier_episodes) <= episode:
            self.barrier_episodes.append({"arrive": {}, "depart": {}})
        ep = self.barrier_episodes[episode]
        ep["arrive"][rank] = t_arrive
        ep["depart"][rank] = t_depart

    # --------------------------------------------------------------- queries
    def write_events(self) -> List[Tuple[float, int, int]]:
        """The flat protocol-write stream as ``(t, page, rank)`` tuples —
        the exact input shape :func:`repro.obs.diagnose.ping_pong_pages`
        consumes (compressed reconstruction; alternation-preserving)."""
        out: List[Tuple[float, int, int]] = []
        for page, ps in sorted(self.pages.items()):
            out.extend((t, page, rank) for t, rank in ps.writer_log)
        return out

    def ranks_seen(self) -> List[int]:
        ranks = set()
        for ps in self.pages.values():
            ranks.update(ps.by_rank)
            ranks.update(ps.write_ranges)
        for ls in self.locks.values():
            ranks.update(ls.by_rank)
        for ep in self.barrier_episodes:
            ranks.update(ep["arrive"])
        return sorted(ranks)

    def __len__(self) -> int:
        return len(self.events)
