"""Fleet observability: roll one sweep's event log up into fleet metrics.

The simulator made single runs observable (spans, metrics, critical
path); this module does the same for the *fleet* — the worker pool a
sweep (:mod:`repro.fabric.scheduler`) runs over. A :class:`FleetReport`
is built from the structured event log (:mod:`repro.fabric.events`),
optionally joined with the sweep manifest and per-cell telemetry
records, and answers the questions the orchestrator alone cannot:

* per-worker: cells completed/failed, busy vs. idle host seconds
  (**utilization**), engine events executed and events/sec, current
  state (idle / running cell N / killed / dead);
* fleet-wide: cache hit ratio, aggregate events/sec, retry and kill
  counts, ETA from per-cell duration history, critical-path category
  totals summed over the joined telemetry records;
* exports: JSON (:meth:`FleetReport.to_dict`), a Prometheus-style text
  exposition (:meth:`FleetReport.to_prometheus`), a sweep-level Chrome
  trace with **one track per worker**
  (:meth:`FleetReport.chrome_trace` — validated by
  :func:`repro.obs.export.validate_chrome_trace`), and the live console
  rendering behind ``python -m repro sweep watch``
  (:meth:`FleetReport.render`).

The report is a pure function of the log: it works identically on a
finished sweep's file and on a half-written one being tailed live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["WorkerStats", "FleetReport", "fleet_report_from_path"]

_US = 1e6  # seconds -> microseconds (Chrome trace unit)


def _cell_index(ev: Dict[str, Any]) -> int:
    """Grid index of an event's cell, -1 when absent or null."""
    cell = ev.get("cell")
    return -1 if cell is None else int(cell)


@dataclass
class WorkerStats:
    """One worker's share of the sweep, derived from its events."""

    worker: int
    pid: Optional[int] = None
    #: cells this worker finished / failed (typed in-cell errors)
    done: int = 0
    failed: int = 0
    #: host seconds spent inside cells (started -> done/failed/kill)
    busy_seconds: float = 0.0
    #: engine events executed across this worker's finished cells, plus
    #: the last heartbeat of a cell that died on it
    events_executed: int = 0
    #: "idle" | "running <cell id>" | "killed" | "dead" | "exited"
    state: str = "idle"
    #: grid index of the cell currently running (live sweeps), else None
    running_cell: Optional[int] = None
    #: last heartbeat payload seen for the running cell
    last_beat: Optional[Dict[str, Any]] = None
    #: host timestamp the current cell started at (for live busy time)
    _started_at: Optional[float] = None
    #: completed (start, end, cell, id, ok) slices for the Chrome trace
    slices: List[Tuple[float, float, int, str, bool]] = field(
        default_factory=list)

    def events_per_sec(self) -> float:
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.busy_seconds

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)


class FleetReport:
    """Aggregated view of one sweep's fleet, live or finished."""

    def __init__(self, header: Dict[str, Any],
                 events: List[Dict[str, Any]],
                 manifest: Optional[Dict[str, Any]] = None,
                 records: Optional[List[Dict[str, Any]]] = None) -> None:
        self.header = header
        self.events = events
        self.manifest = manifest
        self.records = records or []
        self.suite = header.get("suite", "sweep")
        self.total_cells = int(header.get("cells", 0))
        self.workers: Dict[int, WorkerStats] = {}
        self.counts: Dict[str, int] = {
            "enqueued": 0, "cache-hit": 0, "dispatched": 0, "started": 0,
            "heartbeat": 0, "done": 0, "failed": 0, "retried": 0}
        self.kills = 0
        self.deaths = 0
        self.respawns = 0
        self.finished = False
        self.elapsed = 0.0
        #: host-second durations of completed cells (ETA history)
        self.cell_durations: List[float] = []
        self._replay()

    # ----------------------------------------------------------- replay
    def _worker(self, wid: Optional[int]) -> Optional[WorkerStats]:
        if wid is None:
            return None
        if wid not in self.workers:
            self.workers[wid] = WorkerStats(worker=wid)
        return self.workers[wid]

    def _replay(self) -> None:
        for ev in self.events:
            kind = ev.get("kind")
            t = float(ev.get("t") or 0.0)
            self.elapsed = max(self.elapsed, t)
            data = ev.get("data") or {}
            wid = ev.get("worker")
            if kind in self.counts:
                self.counts[kind] += 1
            if kind == "sweep-end":
                self.finished = True
            elif kind in ("worker-spawn", "worker-respawn"):
                # A spawn line missing its worker id (truncated write,
                # hand-edited log) must not take the whole report down.
                ws = self._worker(wid)
                if ws is not None:
                    ws.pid = data.get("pid")
                if kind == "worker-respawn":
                    self.respawns += 1
            elif kind == "started":
                ws = self._worker(wid)
                if ws is not None:
                    ws.state = f"running {ev.get('id', ev.get('cell'))}"
                    ws.running_cell = ev.get("cell")
                    ws._started_at = t
                    ws.last_beat = None
            elif kind == "heartbeat":
                ws = self._worker(wid)
                if ws is not None:
                    ws.last_beat = data
            elif kind in ("done", "failed"):
                ws = self._worker(wid)
                if ws is not None and ws._started_at is not None:
                    duration = max(0.0, t - ws._started_at)
                    ws.busy_seconds += duration
                    ws.slices.append((ws._started_at, t,
                                      _cell_index(ev),
                                      str(ev.get("id", "?")),
                                      kind == "done"))
                    if kind == "done":
                        self.cell_durations.append(duration)
                    ws._started_at = None
                if ws is not None:
                    if kind == "done":
                        ws.done += 1
                        ws.events_executed += int(
                            data.get("events_executed", 0))
                    else:
                        ws.failed += 1
                    ws.state = "idle"
                    ws.running_cell = None
                    ws.last_beat = None
            elif kind == "worker-kill":
                ws = self._worker(wid)
                self.kills += 1
                if ws is not None:
                    prog = data.get("progress") or {}
                    ws.events_executed += int(prog.get("events_executed", 0))
                    if ws._started_at is not None:
                        ws.busy_seconds += max(0.0, t - ws._started_at)
                        ws.slices.append((ws._started_at, t,
                                          _cell_index(ev),
                                          str(ev.get("id", "killed")),
                                          False))
                        ws._started_at = None
                    ws.state = "killed"
                    ws.running_cell = None
            elif kind == "worker-death":
                ws = self._worker(wid)
                self.deaths += 1
                if ws is not None:
                    if ws._started_at is not None:
                        ws.busy_seconds += max(0.0, t - ws._started_at)
                        ws._started_at = None
                    ws.state = "dead"
            elif kind == "worker-exit":
                ws = self._worker(wid)
                if ws is not None and ws.state in ("idle", "running"):
                    ws.state = "exited"
        # Live sweeps: a cell still running contributes its elapsed time
        # and last heartbeat to the worker's busy/event totals.
        for ws in self.workers.values():
            if ws._started_at is not None:
                ws.busy_seconds += max(0.0, self.elapsed - ws._started_at)
                if ws.last_beat:
                    ws.events_executed += int(
                        ws.last_beat.get("events_executed", 0))

    # ---------------------------------------------------------- queries
    def resolved_cells(self) -> int:
        """Cells with a final outcome so far (hit, executed, or failed)."""
        return (self.counts["cache-hit"] + self.counts["done"]
                + self.counts["failed"])

    def remaining_cells(self) -> int:
        return max(0, self.total_cells - self.resolved_cells())

    def cache_hit_ratio(self) -> float:
        resolved = self.resolved_cells()
        if resolved == 0:
            return 0.0
        return self.counts["cache-hit"] / resolved

    def total_events(self) -> int:
        return sum(ws.events_executed for ws in self.workers.values())

    def aggregate_events_per_sec(self) -> float:
        """Fleet throughput: engine events summed over workers per wall
        second of the sweep so far."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.total_events() / self.elapsed

    def eta_seconds(self) -> Optional[float]:
        """Estimated host seconds to finish, from per-cell history.

        ``None`` when nothing has completed yet (no history to project
        from); ``0.0`` once the sweep is finished or nothing remains.
        """
        remaining = self.remaining_cells()
        if self.finished or remaining == 0:
            return 0.0
        if not self.cell_durations:
            return None
        mean = sum(self.cell_durations) / len(self.cell_durations)
        active = sum(1 for ws in self.workers.values()
                     if ws.state not in ("dead", "exited")) or 1
        return mean * remaining / active

    def critical_path_totals(self) -> Dict[str, float]:
        """Category totals summed over the joined telemetry records."""
        from repro.bench.telemetry import CP_CATEGORIES

        totals = {cat: 0.0 for cat in CP_CATEGORIES}
        for rec in self.records:
            for cat, val in rec.get("critical_path", {}).items():
                totals[cat] = totals.get(cat, 0.0) + float(val)
        return totals

    def sharing_totals(self) -> Optional[Dict[str, float]]:
        """Fleet rollup of the records' ``sharing`` fields (see
        ``repro bench run --sharing``): worst hot-page fault rate and
        total ping-pong / false-sharing page counts across the sweep.
        ``None`` when no joined record carries sharing analytics.
        """
        shared = [rec["sharing"] for rec in self.records
                  if isinstance(rec.get("sharing"), dict)]
        if not shared:
            return None
        return {
            "hot_page_fault_rate_hz": max(
                (float(sh.get("top_hot_page_fault_rate_hz", 0.0))
                 for sh in shared), default=0.0),
            "ping_pong_pages": float(sum(
                int(sh.get("ping_pong_pages", 0)) for sh in shared)),
            "false_sharing_pages": float(sum(
                int(sh.get("false_sharing_pages", 0)) for sh in shared)),
        }

    # ---------------------------------------------------------- exports
    def to_dict(self) -> Dict[str, Any]:
        per_worker = {}
        for wid in sorted(self.workers):
            ws = self.workers[wid]
            per_worker[str(wid)] = {
                "pid": ws.pid, "done": ws.done, "failed": ws.failed,
                "busy_seconds": round(ws.busy_seconds, 6),
                "utilization": round(ws.utilization(self.elapsed), 4),
                "events_executed": ws.events_executed,
                "events_per_sec": round(ws.events_per_sec(), 1),
                "state": ws.state,
            }
        d: Dict[str, Any] = {
            "schema": "repro.obs.fleet/1",
            "suite": self.suite,
            "finished": self.finished,
            "elapsed_seconds": round(self.elapsed, 6),
            "cells": {
                "total": self.total_cells,
                "resolved": self.resolved_cells(),
                "remaining": self.remaining_cells(),
                "cache_hits": self.counts["cache-hit"],
                "executed": self.counts["done"],
                "failed": self.counts["failed"],
                "retried": self.counts["retried"],
            },
            "cache_hit_ratio": round(self.cache_hit_ratio(), 4),
            "workers": per_worker,
            "worker_kills": self.kills,
            "worker_deaths": self.deaths,
            "worker_respawns": self.respawns,
            "total_engine_events": self.total_events(),
            "aggregate_events_per_sec":
                round(self.aggregate_events_per_sec(), 1),
            "eta_seconds": self.eta_seconds(),
        }
        if self.records:
            d["critical_path_totals"] = {
                cat: round(val, 9)
                for cat, val in self.critical_path_totals().items()}
        sharing = self.sharing_totals()
        if sharing is not None:
            d["sharing_totals"] = {k: round(v, 9)
                                   for k, v in sharing.items()}
        if self.manifest is not None and self.manifest.get("cache"):
            d["cache"] = self.manifest["cache"]
        return d

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the fleet metrics.

        Gauge/counter lines with a ``suite`` label (plus ``worker`` /
        ``outcome`` / ``category`` where it applies) — scrapeable as a
        textfile-collector drop or diffable as a CI artifact.
        """
        suite = self.suite.replace('"', "'")
        lines: List[str] = []

        def metric(name: str, help_text: str, kind: str,
                   samples: List[Tuple[str, float]]) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, value in samples:
                sep = "," if labels else ""
                lines.append(
                    f'{name}{{suite="{suite}"{sep}{labels}}} {value:g}')

        metric("repro_sweep_cells", "Grid cells by outcome so far.",
               "gauge",
               [('outcome="cache-hit"', self.counts["cache-hit"]),
                ('outcome="executed"', self.counts["done"]),
                ('outcome="failed"', self.counts["failed"]),
                ('outcome="remaining"', self.remaining_cells())])
        metric("repro_sweep_cache_hit_ratio",
               "Fraction of resolved cells served from the result cache.",
               "gauge", [("", self.cache_hit_ratio())])
        metric("repro_sweep_retries_total",
               "Jobs re-queued after a worker death or timeout.",
               "counter", [("", self.counts["retried"])])
        metric("repro_sweep_worker_kills_total",
               "Workers killed by the per-cell timeout.",
               "counter", [("", self.kills)])
        metric("repro_sweep_worker_deaths_total",
               "Workers that died unexpectedly.",
               "counter", [("", self.deaths)])
        metric("repro_sweep_elapsed_seconds",
               "Host seconds since the sweep began.",
               "gauge", [("", self.elapsed)])
        metric("repro_sweep_engine_events_total",
               "Engine events executed across the fleet.",
               "counter", [("", self.total_events())])
        metric("repro_sweep_events_per_second",
               "Aggregate fleet throughput in engine events per second.",
               "gauge", [("", self.aggregate_events_per_sec())])
        if self.manifest is not None and self.manifest.get("cache"):
            metric("repro_sweep_cache_quarantined",
                   "Corrupt cache entries quarantined on this cache root.",
                   "gauge",
                   [("", self.manifest["cache"].get("quarantined", 0))])
        eta = self.eta_seconds()
        if eta is not None:
            metric("repro_sweep_eta_seconds",
                   "Estimated host seconds until the sweep finishes.",
                   "gauge", [("", eta)])
        metric("repro_sweep_worker_utilization",
               "Busy fraction of each worker's wall time.", "gauge",
               [(f'worker="{wid}"', ws.utilization(self.elapsed))
                for wid, ws in sorted(self.workers.items())])
        metric("repro_sweep_worker_events_per_second",
               "Per-worker engine event throughput while busy.", "gauge",
               [(f'worker="{wid}"', ws.events_per_sec())
                for wid, ws in sorted(self.workers.items())])
        if self.records:
            metric("repro_sweep_critical_path_seconds",
                   "Critical-path seconds by category over all records.",
                   "gauge",
                   [(f'category="{cat}"', val) for cat, val
                    in sorted(self.critical_path_totals().items())])
        sharing = self.sharing_totals()
        if sharing is not None:
            metric("repro_sweep_hot_page_fault_rate",
                   "Worst per-page fault rate (faults per virtual second) "
                   "over the joined sharing analytics.",
                   "gauge", [("", sharing["hot_page_fault_rate_hz"])])
            metric("repro_sweep_ping_pong_pages",
                   "Pages whose ownership ping-pongs between ranks, "
                   "summed over the joined records.",
                   "gauge", [("", sharing["ping_pong_pages"])])
            metric("repro_sweep_false_sharing_pages",
                   "Ping-pong pages classified as false sharing, summed "
                   "over the joined records.",
                   "gauge", [("", sharing["false_sharing_pages"])])
        return "\n".join(lines) + "\n"

    def chrome_trace(self) -> Dict[str, Any]:
        """Sweep-level Chrome trace: one track (pid) per worker.

        Each cell execution is a complete slice on its worker's track;
        heartbeats become counter events of in-cell engine events. The
        document passes :func:`repro.obs.export.validate_chrome_trace`
        and loads in Perfetto next to the per-run traces.
        """
        events: List[Dict[str, Any]] = []
        for wid in sorted(self.workers):
            ws = self.workers[wid]
            for begin, end, cell, cell_id, ok in ws.slices:
                events.append({
                    "name": cell_id,
                    "cat": "cell" if ok else "cell-failed",
                    "ph": "X",
                    "ts": begin * _US,
                    "dur": max(end - begin, 0.0) * _US,
                    "pid": wid, "tid": 0,
                    "args": {"cell": cell, "ok": ok},
                })
            if ws._started_at is not None:  # live: still-running slice
                events.append({
                    "name": ws.state, "cat": "cell", "ph": "X",
                    "ts": ws._started_at * _US,
                    "dur": max(self.elapsed - ws._started_at, 0.0) * _US,
                    "pid": wid, "tid": 0, "args": {"live": True},
                })
            events.append({
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": wid, "tid": 0, "args": {"name": f"worker {wid}"},
            })
        for ev in self.events:
            if ev.get("kind") == "heartbeat" and ev.get("worker") is not None:
                data = ev.get("data") or {}
                events.append({
                    "name": "cell.events_executed", "cat": "metric",
                    "ph": "C", "ts": float(ev.get("t", 0.0)) * _US,
                    "pid": int(ev["worker"]), "tid": 0,
                    "args": {"value": data.get("events_executed", 0)},
                })
        if not events:
            # A sweep that produced no worker events (empty log, header
            # only) still exports a loadable, validator-clean trace.
            events.append({
                "name": "process_name", "ph": "M", "ts": 0.0,
                "pid": 0, "tid": 0, "args": {"name": "sweep (no workers)"},
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"suite": self.suite,
                          "elapsed_host_seconds": self.elapsed,
                          "workers": len(self.workers)},
        }

    # ----------------------------------------------------------- render
    def render(self) -> str:
        """The ``sweep watch`` console: per-worker status + fleet totals."""
        from repro.bench.report import render_table

        state = "finished" if self.finished else "running"
        title = (f"sweep {self.suite!r} [{state}] — "
                 f"{self.resolved_cells()}/{self.total_cells or '?'} cells "
                 f"({self.counts['cache-hit']} hit / "
                 f"{self.counts['done']} executed / "
                 f"{self.counts['failed']} failed), "
                 f"{self.counts['retried']} retried — "
                 f"{self.elapsed:.1f}s elapsed")
        rows = []
        for wid in sorted(self.workers):
            ws = self.workers[wid]
            beat = ""
            if ws.last_beat:
                beat = (f"{ws.last_beat.get('events_executed', 0)} ev / "
                        f"{ws.last_beat.get('virtual_seconds', 0.0):.3f}s")
            rows.append([
                f"w{wid}", ws.state, ws.done, ws.failed,
                f"{100.0 * ws.utilization(self.elapsed):.0f}%",
                f"{ws.events_per_sec():,.0f}", beat])
        table = render_table(
            ["worker", "state", "done", "failed", "util", "events/s",
             "last beat"],
            rows, title=title)
        eta = self.eta_seconds()
        eta_text = ("done" if eta == 0.0
                    else "n/a" if eta is None else f"{eta:.1f}s")
        footer = (f"cache hit ratio: {100.0 * self.cache_hit_ratio():.0f}%  "
                  f"aggregate: {self.aggregate_events_per_sec():,.0f} "
                  f"events/s  kills: {self.kills}  deaths: {self.deaths}  "
                  f"ETA: {eta_text}")
        if self.manifest is not None and self.manifest.get("cache", {}) \
                .get("quarantined"):
            footer += (f"\ncache: "
                       f"{self.manifest['cache']['quarantined']} corrupt "
                       f"entr(ies) quarantined — run 'sweep fsck'")
        return table + "\n" + footer


def fleet_report_from_path(events_path: str,
                           manifest_path: Optional[str] = None,
                           telemetry_path: Optional[str] = None
                           ) -> FleetReport:
    """Build a :class:`FleetReport` from files on disk.

    ``manifest_path`` joins in the sweep manifest (cache stats);
    ``telemetry_path`` joins in the telemetry document (critical-path
    totals). Both are optional — the event log alone is enough.
    """
    import json

    from repro.fabric.events import read_events

    header, events = read_events(events_path)
    manifest = None
    if manifest_path is not None:
        with open(manifest_path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    records = None
    if telemetry_path is not None:
        from repro.bench.telemetry import load_telemetry

        records = load_telemetry(telemetry_path).get("records")
    return FleetReport(header, events, manifest=manifest, records=records)
