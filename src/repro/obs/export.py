"""Chrome ``trace_event`` export (Perfetto / ``chrome://tracing``).

Serializes the span tree — and optionally the metrics time series — to the
JSON Object Format of the Trace Event specification:

* every span becomes a complete (``"ph": "X"``) slice on track
  ``pid = rank`` / ``tid = node`` (timestamps converted to microseconds,
  the format's unit),
* cross-rank causal links (a handler span whose parent lives on another
  rank) become flow events (``"s"``/``"f"``) so Perfetto draws the message
  arrows,
* metrics samples become counter (``"ph": "C"``) events,
* process-name metadata labels each rank's track.

:func:`validate_chrome_trace` is the CI schema check: structural validation
with no third-party dependency, returning a list of human-readable errors
(empty = valid).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.obs.critical_path import category_of
from repro.obs.spans import ObsRecorder

__all__ = ["chrome_trace", "chrome_trace_json", "validate_chrome_trace"]

#: pid used for spans not attributed to any rank (engine/cluster context)
CLUSTER_PID = 99

_US = 1e6  # seconds -> microseconds


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    try:
        return float(value)
    except (TypeError, ValueError):
        return str(value)


def chrome_trace(recorder: ObsRecorder, metrics=None,
                 platform_name: str = "") -> Dict[str, Any]:
    """Build the trace document (a plain dict; see :func:`chrome_trace_json`)."""
    now = recorder.engine.now
    events: List[Dict[str, Any]] = []
    pids: Dict[int, str] = {}

    def pid_of(span) -> int:
        if span.rank is not None:
            pids.setdefault(span.rank, f"rank {span.rank}")
            return span.rank
        pids.setdefault(CLUSTER_PID, "cluster")
        return CLUSTER_PID

    for span in recorder.spans:
        end = span.end if span.end is not None else now
        pid = pid_of(span)
        args = {str(k): _jsonable(v) for k, v in span.fields.items()}
        args["span_id"] = span.span_id
        if span.parent is not None:
            args["parent"] = span.parent
        events.append({
            "name": span.kind,
            "cat": category_of(span.kind),
            "ph": "X",
            "ts": span.begin * _US,
            "dur": max(end - span.begin, 0.0) * _US,
            "pid": pid,
            "tid": span.node if span.node is not None else 0,
            "args": args,
        })
        parent = recorder.get(span.parent)
        if parent is not None and parent.rank != span.rank:
            # Message causality across ranks: draw a flow arrow.
            src_pid = pid_of(parent)
            src_end = parent.end if parent.end is not None else now
            src_ts = min(max(span.begin, parent.begin), src_end)
            events.append({
                "name": "causal", "cat": "flow", "ph": "s",
                "id": span.span_id, "ts": src_ts * _US, "pid": src_pid,
                "tid": parent.node if parent.node is not None else 0,
            })
            events.append({
                "name": "causal", "cat": "flow", "ph": "f", "bp": "e",
                "id": span.span_id, "ts": span.begin * _US, "pid": pid,
                "tid": span.node if span.node is not None else 0,
            })
    if metrics is not None:
        for point in metrics.samples:
            for key in sorted(point.values):
                events.append({
                    "name": key, "cat": "metric", "ph": "C",
                    "ts": point.time * _US, "pid": CLUSTER_PID, "tid": 0,
                    "args": {"value": point.values[key]},
                })
        if metrics.samples:
            pids.setdefault(CLUSTER_PID, "cluster")
    for pid, label in sorted(pids.items()):
        events.append({
            "name": "process_name", "ph": "M", "ts": 0.0, "pid": pid,
            "tid": 0, "args": {"name": label},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"platform": platform_name,
                      "total_virtual_seconds": now,
                      "spans": len(recorder.spans)},
    }


def chrome_trace_json(recorder: ObsRecorder, metrics=None,
                      platform_name: str = "", indent: Optional[int] = None) -> str:
    return json.dumps(chrome_trace(recorder, metrics=metrics,
                                   platform_name=platform_name),
                      indent=indent, sort_keys=True)


# ------------------------------------------------------------------ schema
_REQUIRED_BY_PH = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "B": ("name", "ts", "pid", "tid"),
    "E": ("ts", "pid", "tid"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid", "args"),
    "s": ("id", "ts", "pid", "tid"),
    "f": ("id", "ts", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid"),
}


def validate_chrome_trace(doc: Union[str, Dict[str, Any]]) -> List[str]:
    """Structurally validate a Chrome trace document.

    Accepts the JSON text or the already-parsed dict; returns a list of
    error strings (empty means the trace is loadable by Perfetto /
    ``chrome://tracing``).
    """
    errors: List[str] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    if not events:
        errors.append("'traceEvents' is empty")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: event must be an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            errors.append(f"{where}: missing 'ph'")
            continue
        required = _REQUIRED_BY_PH.get(ph)
        if required is None:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        for key in required:
            if key not in ev:
                errors.append(f"{where} (ph={ph}): missing {key!r}")
        ts = ev.get("ts")
        if ts is not None and (not isinstance(ts, (int, float)) or ts < 0):
            errors.append(f"{where}: 'ts' must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if dur is not None and (not isinstance(dur, (int, float)) or dur < 0):
                errors.append(f"{where}: 'dur' must be a non-negative number")
        if "pid" in ev and not isinstance(ev["pid"], int):
            errors.append(f"{where}: 'pid' must be an integer")
        if ph == "M" and not (isinstance(ev.get("args"), dict)
                              and "name" in ev["args"]):
            errors.append(f"{where}: metadata event needs args.name")
    flow_starts = {ev.get("id") for ev in events
                   if isinstance(ev, dict) and ev.get("ph") == "s"}
    for i, ev in enumerate(events):
        if isinstance(ev, dict) and ev.get("ph") == "f":
            if ev.get("id") not in flow_starts:
                errors.append(f"traceEvents[{i}]: flow finish without start "
                              f"(id={ev.get('id')!r})")
    return errors
