"""Time-series metrics: interval sampling of every monitoring surface.

The paper's counters answer "how much, in total"; Regional Consistency
(arXiv:1301.4490) argues tuning needs *per-interval* measurement. The
:class:`MetricsSampler` snapshots, at a configurable virtual-time period:

* every :class:`~repro.core.monitoring.ModuleStats` registry (flattened to
  ``module.counter`` keys),
* network totals (``net.messages``, ``net.bytes``),
* per-node active-message queue depths (``am.qdepth.n<N>`` — the live
  contention signal no end-of-run total can show).

Like :class:`~repro.tools.monitor.AttachedMonitor`, the sampler is a
self-rescheduling engine *event*, not a process: it charges no virtual
time, never keeps the simulation alive, and stops once no non-daemon
process remains. Samples hold cumulative values; :meth:`MetricsSampler.rates`
turns any key into a per-interval rate curve (bandwidth, fetch rate, ...).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

__all__ = ["MetricPoint", "MetricsSampler"]


@dataclass
class MetricPoint:
    """One snapshot of all sampled metrics at a virtual instant."""

    time: float
    values: Dict[str, float] = field(default_factory=dict)

    def get(self, key: str, default: float = 0.0) -> float:
        return self.values.get(key, default)


class MetricsSampler:
    """Periodic snapshots of a built platform's monitoring surfaces."""

    def __init__(self, platform, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"metrics interval must be > 0, got {interval}")
        self.platform = platform
        self.engine = platform.engine
        self.interval = interval
        self.samples: List[MetricPoint] = []
        self._started = False

    # --------------------------------------------------------------- control
    def start(self) -> "MetricsSampler":
        """Arm the sampler (idempotent). Call before the SPMD run; the first
        sample lands one interval in. One final sample may land up to one
        interval after the last task exits."""
        if self._started:
            return self
        self._started = True
        engine = self.engine

        def tick() -> None:
            self.sample()
            if any(p.alive and not p.daemon for p in engine._processes):
                engine.schedule(self.interval, tick)

        engine.schedule(self.interval, tick)
        return self

    def sample(self) -> MetricPoint:
        """Take one on-demand snapshot (also usable without :meth:`start`)."""
        values: Dict[str, float] = {}
        hamster = self.platform.hamster
        for module, counters in hamster.monitoring.query_all().items():
            for counter, value in counters.items():
                values[f"{module}.{counter}"] = float(value)
        network = self.platform.cluster.network
        if network is not None:
            values["net.messages"] = float(network.messages_sent)
            values["net.bytes"] = float(network.bytes_sent)
        fabric = getattr(self.platform, "fabric", None)
        if fabric is not None:
            layer = fabric.layer
            total = 0
            for node_id, queue in layer._queues.items():
                depth = len(queue)
                total += depth
                values[f"am.qdepth.n{node_id}"] = float(depth)
            values["am.qdepth.total"] = float(total)
            values["am.retries"] = float(layer.retries)
        point = MetricPoint(time=self.engine.now, values=values)
        self.samples.append(point)
        return point

    # --------------------------------------------------------------- queries
    def keys(self) -> List[str]:
        seen: Dict[str, None] = {}
        for point in self.samples:
            for key in point.values:
                seen.setdefault(key, None)
        return sorted(seen)

    def series(self, key: str) -> List[Tuple[float, float]]:
        """(time, value) pairs of one metric across all samples."""
        return [(p.time, p.get(key)) for p in self.samples]

    def rates(self, key: str) -> List[Tuple[float, float]]:
        """Per-interval rate curve of a cumulative metric: (time, d/dt).

        ``net.bytes`` becomes instantaneous bandwidth; ``memory.allocations``
        becomes an allocation-rate curve; and so on.
        """
        out: List[Tuple[float, float]] = []
        prev_t, prev_v = 0.0, 0.0
        for time, value in self.series(key):
            dt = time - prev_t
            out.append((time, (value - prev_v) / dt if dt > 0 else 0.0))
            prev_t, prev_v = time, value
        return out

    # --------------------------------------------------------------- exports
    def to_csv(self) -> str:
        """One row per sample, one column per metric (stable key order)."""
        keys = self.keys()
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(["time"] + keys)
        for point in self.samples:
            writer.writerow([f"{point.time:.9f}"]
                            + [f"{point.get(k):g}" for k in keys])
        return out.getvalue()

    def to_json(self, indent: int = 2) -> str:
        doc: List[Dict[str, Any]] = [
            {"time": p.time, "values": {k: p.values[k] for k in sorted(p.values)}}
            for p in self.samples]
        return json.dumps(doc, indent=indent)

    def __len__(self) -> int:
        return len(self.samples)
