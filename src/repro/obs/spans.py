"""Causal span tracing.

A :class:`Span` is a named virtual-time interval with an explicit parent
link. The :class:`ObsRecorder` keeps one current-span *stack per simulated
process* (the engine's strict hand-off guarantees only one runs at a time),
so ``with obs.span(...)`` nests naturally inside blocking middleware code,
and a message can carry its sender's span id to another rank where the
handler's span links back to it — one causal tree across the cluster.

Design constraints honoured here:

* **Zero cost when disabled.** The engine's default observer is the shared
  :data:`NULL_OBS` singleton: ``span()`` hands back one reusable no-op
  context manager, nothing allocates, and — crucially — no instrumentation
  anywhere charges virtual time, so disabled runs are bit-identical.
* **Tracer is the span sink.** Every span close is also emitted as an
  ``obs.span`` event into the engine's :class:`~repro.sim.trace.Tracer`, so
  the existing trace tooling (and the protocol tests built on it) see spans
  through the surface they already consume.
* **Determinism.** Span ids are a per-recorder counter consumed in event
  order; a seeded run produces an identical span tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Span", "ObsRecorder", "NullObserver", "NULL_OBS"]


@dataclass
class Span:
    """One named virtual-time interval in the causal tree."""

    span_id: int
    kind: str
    begin: float
    #: None while the span is still open; closed by the recorder.
    end: Optional[float] = None
    #: span id of the causal parent (same rank, or a remote sender)
    parent: Optional[int] = None
    #: SPMD rank this span's work is attributed to (None = unattributed)
    rank: Optional[int] = None
    #: cluster node, where known (message handlers, wire transfers)
    node: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end - self.begin) if self.end is not None else 0.0

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class _SpanCtx:
    """Context manager closing one span on exit (exceptions included)."""

    __slots__ = ("_recorder", "span")

    def __init__(self, recorder: "ObsRecorder", span: Span) -> None:
        self._recorder = recorder
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> None:
        self._recorder.end(self.span)


class _NullCtx:
    """Reusable no-op context manager (the disabled fast path)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_CTX = _NullCtx()


class NullObserver:
    """Observer that records nothing and allocates nothing.

    Installed as every engine's default ``obs`` so instrumentation sites can
    call ``engine.obs.span(...)`` unconditionally. All methods are no-ops;
    ``enabled`` is False so hot paths may skip field computation entirely.
    """

    enabled = False
    spans: List[Span] = []

    def span(self, kind: str, **fields: Any) -> _NullCtx:
        return _NULL_CTX

    def begin(self, kind: str, **fields: Any) -> None:
        return None

    def end(self, span: Any) -> None:
        return None

    def record(self, kind: str, begin: float, end: float, **fields: Any) -> None:
        return None

    def current_id(self) -> Optional[int]:
        return None


#: Shared do-nothing observer; safe to share because it holds no state.
NULL_OBS = NullObserver()


class ObsRecorder:
    """Collects the causal span tree of one simulation."""

    enabled = True

    def __init__(self, engine, sink_to_trace: bool = True) -> None:
        self.engine = engine
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._next_id = 0
        #: current-span stacks, keyed by SimProcess.pid (None = engine ctx)
        self._stacks: Dict[Optional[int], List[Span]] = {}
        self._sink_to_trace = sink_to_trace

    # -------------------------------------------------------------- plumbing
    def _stack(self) -> List[Span]:
        proc = self.engine.current_process
        key = proc.pid if proc is not None else None
        stack = self._stacks.get(key)
        if stack is None:
            stack = self._stacks[key] = []
        return stack

    def current_id(self) -> Optional[int]:
        """Span id at the top of the calling context's stack, or None."""
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def get(self, span_id: Optional[int]) -> Optional[Span]:
        return self._by_id.get(span_id) if span_id is not None else None

    def _make(self, kind: str, begin: float, parent: Optional[int],
              rank: Optional[int], node: Optional[int],
              fields: Dict[str, Any]) -> Span:
        self._next_id += 1
        if rank is None:
            # Inherit attribution from the causal parent (possibly remote).
            src = self.get(parent)
            if src is not None:
                rank = src.rank
        span = Span(span_id=self._next_id, kind=kind, begin=begin,
                    parent=parent, rank=rank, node=node, fields=fields)
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    # ------------------------------------------------------------- recording
    def span(self, kind: str, parent: Optional[int] = None,
             rank: Optional[int] = None, node: Optional[int] = None,
             **fields: Any) -> _SpanCtx:
        """Open a span as a context manager; nests on the caller's stack.

        Without an explicit ``parent`` the enclosing span (same process)
        becomes the parent; pass a remote sender's span id to link across
        ranks (message causality).
        """
        return _SpanCtx(self, self.begin(kind, parent=parent, rank=rank,
                                         node=node, **fields))

    def begin(self, kind: str, parent: Optional[int] = None,
              rank: Optional[int] = None, node: Optional[int] = None,
              **fields: Any) -> Span:
        """Open a span explicitly (pair with :meth:`end`)."""
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1].span_id
        span = self._make(kind, self.engine.now, parent, rank, node, fields)
        stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` at the current virtual time."""
        if span.end is not None:
            return
        span.end = self.engine.now
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:          # closed out of order (defensive)
            stack.remove(span)
        if self._sink_to_trace:
            self.engine.trace.emit("obs.span", span_id=span.span_id,
                                   span_kind=span.kind, begin=span.begin,
                                   dur=span.end - span.begin,
                                   parent=span.parent, rank=span.rank)

    def record(self, kind: str, begin: float, end: float,
               parent: Optional[int] = None, rank: Optional[int] = None,
               node: Optional[int] = None, **fields: Any) -> Span:
        """Record an already-completed interval (e.g. a wire transfer whose
        start/arrival times the network model computed). Does not touch any
        stack; ``parent`` defaults to the calling context's current span."""
        if parent is None:
            parent = self.current_id()
        span = self._make(kind, begin, parent, rank, node, fields)
        span.end = end
        if self._sink_to_trace:
            self.engine.trace.emit("obs.span", span_id=span.span_id,
                                   span_kind=span.kind, begin=span.begin,
                                   dur=span.end - span.begin,
                                   parent=span.parent, rank=span.rank)
        return span

    # --------------------------------------------------------------- queries
    def closed(self) -> List[Span]:
        """All spans with both endpoints (open spans are still running —
        reports clamp or skip them explicitly)."""
        return [s for s in self.spans if s.end is not None]

    def of_kind(self, kind: str) -> List[Span]:
        return [s for s in self.spans if s.kind == kind]

    def children(self, span_id: int) -> List[Span]:
        return [s for s in self.spans if s.parent == span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans
                if s.parent is None or s.parent not in self._by_id]

    def __len__(self) -> int:
        return len(self.spans)
