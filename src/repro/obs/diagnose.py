"""Sharing diagnosis: detectors and exporters over the sharing stream.

Input is a :class:`~repro.obs.sharing.SharingRecorder` (or, for the pure
detector functions, plain event tuples — the property tests feed those
directly). Output is:

* :func:`ping_pong_pages` — pages whose *writing rank* alternates above a
  threshold (ownership bouncing between ranks: each handoff is a fetch +
  invalidate round on SW-DSM, a remote-write stream on the hybrid),
* :func:`classify_sharing` — false vs true sharing for one page: ranks
  writing **disjoint** sub-page byte ranges ping-pong a page they never
  actually share (false sharing — fixable by padding/alignment); ranks
  whose written ranges overlap genuinely communicate (true sharing —
  fixable only by restructuring the algorithm),
* :func:`sharing_report` — the schema-versioned JSON document
  (``repro.obs.sharing/1``) with ping-pong/false-sharing findings, top-N
  hot pages and locks, and barrier-skew rollups,
* :func:`sharing_heatmap_csv` / :func:`sharing_chrome_trace` — per-page
  virtual-time activity (tidy CSV; Chrome counter tracks that pass
  :func:`repro.obs.export.validate_chrome_trace`),
* :func:`sharing_summary` — the compact form embedded in bench telemetry
  records (and surfaced as Prometheus gauges by
  :meth:`repro.obs.fleet.FleetReport.to_prometheus`).

Detectors are **deterministic and order-independent**: they sort their
input by ``(t, page, rank)`` before compressing, so any permutation of the
same event multiset yields the same verdicts (property-tested).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.sharing import SharingRecorder

__all__ = ["SHARING_SCHEMA", "compress_writers", "ping_pong_pages",
           "classify_sharing", "group_pages", "sharing_report",
           "render_sharing_report", "validate_sharing_report",
           "sharing_heatmap_csv", "sharing_chrome_trace", "sharing_summary"]

SHARING_SCHEMA = "repro.obs.sharing/1"

#: Chrome-trace pid for the sharing counter tracks (the span exporter uses
#: ranks and CLUSTER_PID=99; 98 keeps the tracks separate).
SHARING_PID = 98

_US = 1e6


# --------------------------------------------------------------- detectors
def compress_writers(events: Iterable[Tuple[float, int]]) -> List[Tuple[float, int]]:
    """Compress a ``(t, rank)`` write stream into its alternation log:
    one entry per change of writing rank. Input is sorted first, so the
    result is independent of arrival order."""
    log: List[Tuple[float, int]] = []
    for t, rank in sorted(events):
        if not log or log[-1][1] != rank:
            log.append((t, rank))
    return log


def ping_pong_pages(write_events: Iterable[Tuple[float, int, int]],
                    min_alternations: int = 4,
                    min_rate: float = 0.0) -> Dict[int, Dict[str, Any]]:
    """Detect pages whose writing rank bounces between ranks.

    ``write_events`` is an iterable of ``(t, page, rank)`` protocol-level
    write events (JiaJia write notices, SCI-VM remote writes). A page flags
    when its writer changed hands at least ``min_alternations`` times and,
    if ``min_rate`` > 0, at least that many alternations per virtual
    second over the page's active window. A page with a single writer can
    never flag (its alternation count is zero by construction).
    """
    by_page: Dict[int, List[Tuple[float, int]]] = {}
    counts: Dict[int, int] = {}
    for t, page, rank in sorted(write_events):
        by_page.setdefault(page, []).append((t, rank))
        counts[page] = counts.get(page, 0) + 1
    out: Dict[int, Dict[str, Any]] = {}
    for page in sorted(by_page):
        log = compress_writers(by_page[page])
        alternations = len(log) - 1
        if alternations < min_alternations:
            continue
        t0, t1 = by_page[page][0][0], by_page[page][-1][0]
        duration = t1 - t0
        rate = alternations / duration if duration > 0 else float("inf")
        if rate < min_rate:
            continue
        out[page] = {
            "page": page,
            "ranks": sorted({rank for _, rank in log}),
            "alternations": alternations,
            "writes": counts[page],
            "rate_hz": rate,
            "window": [t0, t1],
        }
    return out


def classify_sharing(ranges_by_rank: Dict[int, Sequence[Sequence[int]]]) -> str:
    """Classify one page's cross-rank write pattern.

    ``ranges_by_rank`` maps rank -> half-open ``[lo, hi)`` byte intervals
    (page-local) that rank wrote. Returns:

    * ``"false"`` — two or more ranks wrote, and no two ranks' intervals
      overlap: they share the page, not the data (false sharing),
    * ``"true"`` — at least one byte was written by two different ranks,
    * ``"unknown"`` — fewer than two ranks have recorded write ranges.
    """
    flat: List[Tuple[int, int, int]] = []
    writers = 0
    for rank in sorted(ranges_by_rank):
        ivs = [iv for iv in ranges_by_rank[rank] if iv[1] > iv[0]]
        if not ivs:
            continue
        writers += 1
        flat.extend((int(lo), int(hi), rank) for lo, hi in ivs)
    if writers < 2:
        return "unknown"
    flat.sort()
    for (lo_a, hi_a, rank_a), (lo_b, hi_b, rank_b) in zip(flat, flat[1:]):
        if rank_a != rank_b and lo_b < hi_a:
            return "true"
    return "false"


def group_pages(pages: Iterable[int]) -> List[List[int]]:
    """Group page numbers into inclusive contiguous ``[first, last]``
    ranges (the human-readable "pages 16-19" form)."""
    out: List[List[int]] = []
    for p in sorted(set(pages)):
        if out and p == out[-1][1] + 1:
            out[-1][1] = p
        else:
            out.append([p, p])
    return out


# ------------------------------------------------------------------ report
def _barrier_rollup(recorder: SharingRecorder) -> Dict[str, Any]:
    skews: List[float] = []
    for ep in recorder.barrier_episodes:
        arrivals = list(ep["arrive"].values())
        skews.append(max(arrivals) - min(arrivals) if len(arrivals) > 1 else 0.0)
    if not skews:
        return {"episodes": 0, "max_skew_s": 0.0, "mean_skew_s": 0.0,
                "worst_episode": None, "skews_s": []}
    worst = max(range(len(skews)), key=lambda i: skews[i])
    return {"episodes": len(skews),
            "max_skew_s": skews[worst],
            "mean_skew_s": sum(skews) / len(skews),
            "worst_episode": worst,
            "skews_s": skews[:1000]}


def _lock_entries(recorder: SharingRecorder) -> List[Dict[str, Any]]:
    entries = []
    for lock_id, ls in recorder.locks.items():
        entries.append({
            "lock": lock_id,
            "acquires": ls.acquires,
            "contended": ls.contended,
            "wait_total_s": ls.wait_total,
            "wait_max_s": ls.wait_max,
            "wait_mean_s": ls.wait_total / ls.acquires if ls.acquires else 0.0,
            "hold_total_s": ls.hold_total,
            "hold_max_s": ls.hold_max,
            "wait_hist": {str(k): v for k, v in sorted(ls.wait_hist.items())},
            "hold_hist": {str(k): v for k, v in sorted(ls.hold_hist.items())},
            "ranks": sorted(ls.by_rank),
        })
    entries.sort(key=lambda e: (-e["wait_total_s"], -e["acquires"], e["lock"]))
    return entries


def _ping_pong_entries(recorder: SharingRecorder, min_alternations: int,
                       min_rate: float) -> List[Dict[str, Any]]:
    entries = []
    found = ping_pong_pages(recorder.write_events(),
                            min_alternations=min_alternations,
                            min_rate=min_rate)
    for page, info in found.items():
        ps = recorder.pages[page]
        ranges = {str(r): [list(iv) for iv in ivs]
                  for r, ivs in sorted(ps.write_ranges.items())}
        entry = dict(info)
        entry["classification"] = classify_sharing(ps.write_ranges)
        entry["write_ranges"] = ranges
        entry["fetches"] = ps.fetches
        entry["invalidations"] = ps.invalidations
        entries.append(entry)
    entries.sort(key=lambda e: (-e["alternations"], e["page"]))
    return entries


def _hot_page_entries(recorder: SharingRecorder, top: int) -> List[Dict[str, Any]]:
    ranked = sorted(recorder.pages.values(),
                    key=lambda ps: (-ps.protocol_events(),
                                    -(ps.reads + ps.writes), ps.page))
    entries = []
    for ps in ranked[:top]:
        if ps.protocol_events() == 0 and ps.reads + ps.writes == 0:
            continue
        entries.append({
            "page": ps.page,
            "events": ps.protocol_events(),
            "read_faults": ps.read_faults,
            "write_faults": ps.write_faults,
            "fetches": ps.fetches,
            "fetch_bytes": ps.fetch_bytes,
            "invalidations": ps.invalidations,
            "notices": ps.notices,
            "remote_reads": ps.remote_reads,
            "remote_writes": ps.remote_writes,
            "accesses": ps.reads + ps.writes,
            "ranks": sorted(set(ps.by_rank) | set(ps.write_ranges)),
        })
    return entries


def sharing_report(recorder: SharingRecorder, platform_name: str = "",
                   n_ranks: Optional[int] = None,
                   page_size: Optional[int] = None, top: int = 10,
                   min_alternations: int = 4,
                   min_rate: float = 0.0) -> Dict[str, Any]:
    """Build the full ``repro.obs.sharing/1`` diagnosis document."""
    ping_pong = _ping_pong_entries(recorder, min_alternations, min_rate)
    false_pages = sorted(e["page"] for e in ping_pong
                         if e["classification"] == "false")
    false_ranks = sorted({r for e in ping_pong
                          if e["classification"] == "false"
                          for r in e["ranks"]})
    totals = {
        "pages_tracked": len(recorder.pages),
        "read_faults": sum(p.read_faults for p in recorder.pages.values()),
        "write_faults": sum(p.write_faults for p in recorder.pages.values()),
        "fetches": sum(p.fetches for p in recorder.pages.values()),
        "fetch_bytes": sum(p.fetch_bytes for p in recorder.pages.values()),
        "invalidations": sum(p.invalidations for p in recorder.pages.values()),
        "notices": sum(p.notices for p in recorder.pages.values()),
        "remote_reads": sum(p.remote_reads for p in recorder.pages.values()),
        "remote_writes": sum(p.remote_writes for p in recorder.pages.values()),
        "lock_acquires": sum(l.acquires for l in recorder.locks.values()),
        "events_dropped": recorder.dropped,
    }
    return {
        "schema": SHARING_SCHEMA,
        "platform": platform_name,
        "n_ranks": n_ranks,
        "page_size": page_size,
        "virtual_seconds": recorder.engine.now,
        "thresholds": {"min_alternations": min_alternations,
                       "min_rate_hz": min_rate},
        "totals": totals,
        "ping_pong": ping_pong,
        "false_sharing": {"pages": false_pages,
                          "ranges": group_pages(false_pages),
                          "ranks": false_ranks},
        "hot_pages": _hot_page_entries(recorder, top),
        "hot_locks": _lock_entries(recorder)[:top],
        "barriers": _barrier_rollup(recorder),
    }


# ---------------------------------------------------------------- validate
def validate_sharing_report(doc: Any) -> List[str]:
    """Structurally validate a sharing report (CI schema gate; mirrors
    ``validate_telemetry`` / ``validate_events``). Accepts the JSON text or
    the parsed dict; returns human-readable errors (empty = valid)."""
    errors: List[str] = []
    if isinstance(doc, str):
        try:
            doc = json.loads(doc)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    if doc.get("schema") != SHARING_SCHEMA:
        errors.append(f"schema must be {SHARING_SCHEMA!r}, "
                      f"got {doc.get('schema')!r}")
    for key, typ in (("totals", dict), ("false_sharing", dict),
                     ("barriers", dict), ("ping_pong", list),
                     ("hot_pages", list), ("hot_locks", list)):
        if not isinstance(doc.get(key), typ):
            errors.append(f"missing or mistyped {key!r} "
                          f"(expected {typ.__name__})")
    vs = doc.get("virtual_seconds")
    if not isinstance(vs, (int, float)) or vs < 0:
        errors.append("'virtual_seconds' must be a non-negative number")
    for i, entry in enumerate(doc.get("ping_pong") or []):
        where = f"ping_pong[{i}]"
        if not isinstance(entry, dict):
            errors.append(f"{where}: must be an object")
            continue
        for key in ("page", "ranks", "alternations", "classification"):
            if key not in entry:
                errors.append(f"{where}: missing {key!r}")
        if entry.get("classification") not in ("false", "true", "unknown"):
            errors.append(f"{where}: bad classification "
                          f"{entry.get('classification')!r}")
        alts = entry.get("alternations")
        if not isinstance(alts, int) or alts < 0:
            errors.append(f"{where}: 'alternations' must be a "
                          "non-negative integer")
        ranks = entry.get("ranks")
        if isinstance(ranks, list) and len(ranks) < 2 and alts:
            errors.append(f"{where}: alternations require >= 2 ranks")
    fs = doc.get("false_sharing")
    if isinstance(fs, dict):
        for key in ("pages", "ranges", "ranks"):
            if not isinstance(fs.get(key), list):
                errors.append(f"false_sharing.{key} must be a list")
    for i, entry in enumerate(doc.get("hot_locks") or []):
        if not isinstance(entry, dict) or "lock" not in entry:
            errors.append(f"hot_locks[{i}]: missing 'lock'")
    barriers = doc.get("barriers")
    if isinstance(barriers, dict):
        eps = barriers.get("episodes")
        if not isinstance(eps, int) or eps < 0:
            errors.append("barriers.episodes must be a non-negative integer")
    return errors


# ------------------------------------------------------------------ render
def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _fmt_ranges(ranges: List[List[int]]) -> str:
    return ", ".join(f"{a}-{b}" if a != b else f"{a}" for a, b in ranges)


def render_sharing_report(doc: Dict[str, Any]) -> str:
    """Human-readable console rendering of a sharing report."""
    lines: List[str] = []
    title = doc.get("platform") or "run"
    lines.append(f"sharing diagnosis — {title} "
                 f"({doc.get('n_ranks') or '?'} ranks, "
                 f"{doc.get('page_size') or '?'} B pages, "
                 f"{doc.get('virtual_seconds', 0.0):.6f} virtual s)")
    t = doc["totals"]
    lines.append(f"  protocol: {t['read_faults']} read faults, "
                 f"{t['write_faults']} write faults, "
                 f"{t['fetches']} fetches ({t['fetch_bytes']} B), "
                 f"{t['invalidations']} invalidations, "
                 f"{t['notices']} notices, "
                 f"{t['remote_reads'] + t['remote_writes']} remote ops")
    pp = doc["ping_pong"]
    n_false = sum(1 for e in pp if e["classification"] == "false")
    n_true = sum(1 for e in pp if e["classification"] == "true")
    lines.append(f"  ping-pong pages: {len(pp)} "
                 f"({n_false} false sharing, {n_true} true sharing)")
    fs = doc["false_sharing"]
    if fs["pages"]:
        lines.append(f"  FALSE SHARING: page(s) {_fmt_ranges(fs['ranges'])} "
                     f"between ranks {','.join(map(str, fs['ranks']))} — "
                     "disjoint sub-page writes bouncing whole pages")
    for e in pp[:8]:
        ranks = ",".join(map(str, e["ranks"]))
        rate = e["rate_hz"]
        rate_s = f"{rate:.1f}/s" if rate != float("inf") else "inf/s"
        detail = ""
        if e["classification"] == "false":
            parts = []
            for rank, ivs in sorted(e["write_ranges"].items(),
                                    key=lambda kv: int(kv[0])):
                spans = ",".join(f"[{lo},{hi})" for lo, hi in ivs)
                parts.append(f"rank {rank} wrote {spans}")
            detail = " — " + "; ".join(parts)
        elif e["classification"] == "true":
            detail = " — overlapping writes (genuine communication)"
        lines.append(f"    page {e['page']}: {e['classification']} sharing, "
                     f"ranks {ranks}, {e['alternations']} handoffs @ {rate_s}"
                     f"{detail}")
    hot = doc["hot_pages"]
    if hot:
        head = ", ".join(
            f"page {e['page']} ({e['events']} ev)" if e["events"]
            else f"page {e['page']} ({e['accesses']} acc)"
            for e in hot[:5])
        lines.append(f"  hot pages: {head}")
    for e in doc["hot_locks"][:5]:
        lines.append(f"  hot lock {e['lock']}: {e['acquires']} acquires, "
                     f"{e['contended']} contended, "
                     f"total wait {_fmt_s(e['wait_total_s'])} "
                     f"(max {_fmt_s(e['wait_max_s'])}, "
                     f"mean hold {_fmt_s(e['hold_total_s'] / e['acquires'] if e['acquires'] else 0.0)})")
    b = doc["barriers"]
    if b["episodes"]:
        lines.append(f"  barriers: {b['episodes']} episodes, "
                     f"max arrival skew {_fmt_s(b['max_skew_s'])} "
                     f"(episode {b['worst_episode']}), "
                     f"mean {_fmt_s(b['mean_skew_s'])}")
    if t["events_dropped"]:
        lines.append(f"  note: {t['events_dropped']} stream events dropped "
                     "(aggregates are complete; heatmap is truncated)")
    return "\n".join(lines)


# ----------------------------------------------------------------- exports
def _bin_events(recorder: SharingRecorder, bins: int):
    """Bucket the flat stream into per-page virtual-time bins. Returns
    (horizon, width, {page: {bin: {kind-group: count}}})."""
    horizon = recorder.engine.now
    if horizon <= 0 and recorder.events:
        horizon = max(t for t, *_ in recorder.events)
    if horizon <= 0:
        horizon = 1.0
    width = horizon / bins
    grid: Dict[int, Dict[int, Dict[str, int]]] = {}
    for t, kind, page, _rank in recorder.events:
        b = min(int(t / width), bins - 1)
        if kind in ("fault.r", "fault.w"):
            group = "faults"
        elif kind == "fetch":
            group = "fetches"
        elif kind in ("inval", "downgrade"):
            group = "invalidations"
        else:                      # notice / remote.r / remote.w
            group = "writes"
        cell = grid.setdefault(page, {}).setdefault(b, {})
        cell[group] = cell.get(group, 0) + 1
    return horizon, width, grid


def sharing_heatmap_csv(recorder: SharingRecorder, bins: int = 50) -> str:
    """Per-page virtual-time heatmap as tidy CSV (one row per non-empty
    page × time-bin cell)."""
    _, width, grid = _bin_events(recorder, bins)
    lines = ["page,bin,t_start,t_end,faults,fetches,invalidations,writes"]
    for page in sorted(grid):
        for b in sorted(grid[page]):
            cell = grid[page][b]
            lines.append(f"{page},{b},{b * width:.9f},{(b + 1) * width:.9f},"
                         f"{cell.get('faults', 0)},{cell.get('fetches', 0)},"
                         f"{cell.get('invalidations', 0)},"
                         f"{cell.get('writes', 0)}")
    return "\n".join(lines) + "\n"


def sharing_chrome_trace(recorder: SharingRecorder, platform_name: str = "",
                         top: int = 8, bins: int = 60) -> Dict[str, Any]:
    """Counter-track trace for the hottest pages: one multi-series counter
    per page (faults/fetches/invalidations/writes per time bin), loadable
    next to the span trace in Perfetto. Passes
    :func:`repro.obs.export.validate_chrome_trace`."""
    _, width, grid = _bin_events(recorder, bins)
    hottest = sorted(grid,
                     key=lambda p: (-sum(sum(c.values())
                                         for c in grid[p].values()), p))[:top]
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "ts": 0.0, "pid": SHARING_PID,
        "tid": 0, "args": {"name": "page sharing"},
    }]
    for page in hottest:
        cells = grid[page]
        for b in sorted(cells):
            cell = cells[b]
            events.append({
                "name": f"page {page}",
                "cat": "sharing", "ph": "C",
                "ts": b * width * _US,
                "pid": SHARING_PID, "tid": 0,
                "args": {"faults": cell.get("faults", 0),
                         "fetches": cell.get("fetches", 0),
                         "invalidations": cell.get("invalidations", 0),
                         "writes": cell.get("writes", 0)},
            })
        # Zero the counter at the horizon so Perfetto closes the series.
        events.append({
            "name": f"page {page}", "cat": "sharing", "ph": "C",
            "ts": bins * width * _US, "pid": SHARING_PID, "tid": 0,
            "args": {"faults": 0, "fetches": 0, "invalidations": 0,
                     "writes": 0},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"platform": platform_name,
                      "total_virtual_seconds": recorder.engine.now,
                      "pages_tracked": len(recorder.pages),
                      "stream_events": len(recorder.events),
                      "stream_dropped": recorder.dropped},
    }


# ----------------------------------------------------------------- summary
def sharing_summary(recorder: SharingRecorder, min_alternations: int = 4,
                    min_rate: float = 0.0) -> Dict[str, Any]:
    """Compact sharing summary for bench telemetry records. Built from
    virtual-time quantities only, so it is as deterministic as the run."""
    found = ping_pong_pages(recorder.write_events(),
                            min_alternations=min_alternations,
                            min_rate=min_rate)
    false_pages = [p for p, info in found.items()
                   if classify_sharing(recorder.pages[p].write_ranges)
                   == "false"]
    horizon = recorder.engine.now
    hot = _hot_page_entries(recorder, top=1)
    top_hot = None
    fault_rate = 0.0
    if hot:
        entry = hot[0]
        faults = entry["read_faults"] + entry["write_faults"]
        fault_rate = faults / horizon if horizon > 0 else 0.0
        top_hot = {"page": entry["page"], "events": entry["events"],
                   "faults": faults, "fault_rate_hz": fault_rate}
    locks = _lock_entries(recorder)
    hot_lock = None
    if locks and locks[0]["acquires"]:
        hot_lock = {"lock": locks[0]["lock"],
                    "acquires": locks[0]["acquires"],
                    "wait_total_s": locks[0]["wait_total_s"]}
    return {
        "schema": SHARING_SCHEMA,
        "ping_pong_pages": len(found),
        "false_sharing_pages": len(false_pages),
        "false_sharing_ranges": group_pages(false_pages),
        "top_hot_page": top_hot,
        "top_hot_page_fault_rate_hz": fault_rate,
        "hot_lock": hot_lock,
        "barrier_max_skew_s": _barrier_rollup(recorder)["max_skew_s"],
    }
