"""repro.obs — causal observability for the whole stack.

The paper's §4.3 monitoring gives every module architecture-independent
*counters*; this package adds the three layers a performance tool actually
needs on top of them:

* :mod:`repro.obs.spans` — causal **span** tracing. A span is a named
  virtual-time interval with an explicit parent link; the chain *model API
  call → HAMSTER service → DSM protocol action → active message → network
  transfer* becomes one linked tree, across ranks, including
  retransmissions injected by :mod:`repro.faults`.
* :mod:`repro.obs.metrics` — **time-series metrics**: an interval sampler
  that snapshots every :class:`~repro.core.monitoring.ModuleStats` registry
  plus per-network bytes/queue depth at a configurable virtual-time period,
  so tuners get bandwidth/contention *curves*, not only final totals.
* :mod:`repro.obs.critical_path` — a critical-path walker over the span
  tree plus a per-rank attribution of total runtime to
  compute/protocol/wire/blocked categories.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loads in Perfetto
  or ``chrome://tracing``) and a lightweight schema validator for CI.
* :mod:`repro.obs.sharing` / :mod:`repro.obs.diagnose` — **sharing-pattern
  analytics**: the per-page × per-rank protocol stream (faults, fetches,
  write notices, invalidations, remote transactions) plus per-lock
  wait/hold histograms and barrier skew, with ping-pong and false-sharing
  detectors, top-N hot pages/locks, and JSON/CSV/Chrome exporters —
  ``python -m repro diagnose``.
* :mod:`repro.obs.fleet` — the same discipline one level up: a
  :class:`~repro.obs.fleet.FleetReport` rolls a sweep's structured event
  log (:mod:`repro.fabric.events`) into per-worker utilization, fleet
  throughput, ETA, and a one-track-per-worker Chrome trace, powering
  ``python -m repro sweep watch``.

Everything is **off by default and costs zero when disabled**: the engine
carries a shared :data:`~repro.obs.spans.NULL_OBS` sentinel whose every
operation is a no-op, no virtual time is ever charged by instrumentation,
and benchmark outputs stay bit-identical — preserving the paper's
"monitoring independent of the architecture, negligible overhead" property.
"""

from repro.obs.critical_path import (CriticalPathReport, RankBreakdown,
                                     category_of, critical_path,
                                     critical_path_report)
from repro.obs.export import (chrome_trace, chrome_trace_json,
                              validate_chrome_trace)
from repro.obs.fleet import (FleetReport, WorkerStats,
                             fleet_report_from_path)
from repro.obs.diagnose import (SHARING_SCHEMA, classify_sharing,
                                ping_pong_pages, render_sharing_report,
                                sharing_chrome_trace, sharing_heatmap_csv,
                                sharing_report, sharing_summary,
                                validate_sharing_report)
from repro.obs.metrics import MetricPoint, MetricsSampler
from repro.obs.sharing import NULL_SHARING, NullSharing, SharingRecorder
from repro.obs.spans import NULL_OBS, NullObserver, ObsRecorder, Span

__all__ = [
    "Span",
    "ObsRecorder",
    "NullObserver",
    "NULL_OBS",
    "MetricsSampler",
    "MetricPoint",
    "CriticalPathReport",
    "RankBreakdown",
    "category_of",
    "critical_path",
    "critical_path_report",
    "chrome_trace",
    "chrome_trace_json",
    "validate_chrome_trace",
    "FleetReport",
    "WorkerStats",
    "fleet_report_from_path",
    "SharingRecorder",
    "NullSharing",
    "NULL_SHARING",
    "SHARING_SCHEMA",
    "ping_pong_pages",
    "classify_sharing",
    "sharing_report",
    "render_sharing_report",
    "validate_sharing_report",
    "sharing_heatmap_csv",
    "sharing_chrome_trace",
    "sharing_summary",
]
