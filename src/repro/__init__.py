"""HAMSTER reproduction: a framework for portable shared memory programming.

Reimplementation of Schulz & McKee (IPPS 2003) on a deterministic simulated
cluster substrate. Quick start::

    from repro import preset

    plat = preset("sw-dsm-4").build()

    def main(env, n):
        A = env.alloc_array((n, n), name="A")
        ...

    results = plat.hamster.run_spmd(main, args=(256,))

See ``examples/quickstart.py`` and the README for the full tour.
"""

from repro.config import ClusterConfig, load, loads, preset
from repro.core.hamster import Hamster
from repro.core.templates import SpmdEnv
from repro.faults import FaultPlan, run_chaos

__version__ = "1.1.0"

__all__ = ["ClusterConfig", "preset", "load", "loads", "Hamster", "SpmdEnv",
           "FaultPlan", "run_chaos", "__version__"]
