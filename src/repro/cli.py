"""Command-line driver: ``python -m repro <command>``.

Commands:

* ``run`` — execute a Table 1 benchmark on a platform and print its phase
  times, verification status, and (optionally) a profile report::

      python -m repro run --preset sw-dsm-4 --app sor --param n=256 \\
          --param iterations=5 --profile

* ``chaos`` — run a benchmark under a seeded fault plan (S17) and print the
  typed outcome and fault/retry/detector statistics::

      python -m repro chaos --preset sw-dsm-2 --app sor --param n=128 \\
          --fault-seed 42 --crash 1@0.003

* ``trace`` — run a benchmark with observability on, print the critical-path
  report, and optionally export a Perfetto-loadable Chrome trace; or, with
  ``--validate FILE``, schema-check a previously exported trace::

      python -m repro trace --preset sw-dsm-4 --app sor --param n=128 \\
          --trace-out sor.trace.json

* ``bench`` — benchmark telemetry and regression gating
  (:mod:`repro.bench.telemetry` / :mod:`repro.bench.baseline`)::

      python -m repro bench run --suite smoke --json-out BENCH_smoke.json
      python -m repro bench compare --json BENCH_smoke.json
      python -m repro bench update-baseline --json BENCH_smoke.json
      python -m repro bench report --json BENCH_smoke.json --out report.md

* ``sweep`` — the parallel experiment fabric (:mod:`repro.fabric`): run a
  declarative grid over N worker processes with a content-addressed result
  cache and a durable write-ahead journal, resume an interrupted sweep,
  verify cache integrity, inspect a grid against the cache, render a
  stored manifest, watch a live fleet, or export fleet metrics::

      python -m repro sweep run --grid grid.json --workers 4 --dir sweepdir
      python -m repro sweep resume sweepdir
      python -m repro sweep fsck --cache-dir .fabric-cache --repair
      python -m repro sweep show --grid grid.json
      python -m repro sweep status --dir sweepdir
      python -m repro sweep status --manifest sweep-manifest.json
      python -m repro sweep watch --events sweepdir/events.jsonl --once
      python -m repro sweep report --events sweepdir/events.jsonl \\
          --json-out fleet.json --prom-out fleet.prom --trace-out fleet.trace

  Exit codes: 0 ok, 1 failed cells, 2 schema/log errors, 3 failed
  ``--expect-cached``, 4 aborted (``--max-failures`` tripped), 5
  interrupted (graceful SIGINT/SIGTERM drain; resume picks up the rest).

* ``platforms`` — list the named platform presets.
* ``apps`` — list the benchmark applications and their paper working sets.
* ``experiments`` — regenerate all tables/figures (delegates to
  :mod:`repro.bench.experiments`); ``--json-out`` records the numbers as
  a machine-readable artifact, ``--workers N`` parallelizes the figure
  grid through the fabric.

A ``--config FILE`` may replace ``--preset`` to build the platform from an
INI-style cluster configuration (§3.3), reproducing the paper's
only-the-config-changes workflow from the shell.
"""

from __future__ import annotations

import argparse
import functools
import os
import sys
from typing import Any, Dict, List, Optional

from repro.apps.common import APP_TABLE
from repro.config import PRESETS, load, preset

__all__ = ["main", "build_parser"]


def _parse_param(text: str) -> tuple:
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"--param expects name=value, got {text!r}")
    key, _, raw = text.partition("=")
    value: Any
    for caster in (int, float):
        try:
            value = caster(raw)
            break
        except ValueError:
            continue
    else:
        value = {"true": True, "false": False}.get(raw.lower(), raw)
    return key.strip(), value


def _parse_crash(text: str):
    """NODE@AT or NODE@AT@RESTART, times in virtual seconds."""
    from repro.faults import NodeCrash

    parts = text.split("@")
    if len(parts) not in (2, 3):
        raise argparse.ArgumentTypeError(
            f"--crash expects NODE@AT[@RESTART], got {text!r}")
    try:
        return NodeCrash(node=int(parts[0]), at=float(parts[1]),
                         restart=float(parts[2]) if len(parts) == 3 else None)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_fault_options(cmd) -> None:
    fault = cmd.add_mutually_exclusive_group()
    fault.add_argument("--fault-seed", type=int, metavar="SEED",
                       help="inject the default seeded fault profile "
                            "(moderate drop/dup/delay) with this seed")
    fault.add_argument("--fault-plan", metavar="FILE",
                       help="load a JSON fault plan (FaultPlan.dumps format)")


def _add_obs_options(cmd) -> None:
    cmd.add_argument("--trace-out", metavar="FILE",
                     help="record causal spans and export them as Chrome "
                          "trace_event JSON (load in Perfetto/about:tracing)")
    cmd.add_argument("--metrics-interval", type=float, metavar="SECONDS",
                     help="sample time-series metrics every SECONDS of "
                          "virtual time")
    cmd.add_argument("--metrics-out", metavar="FILE",
                     help="write sampled metrics (.csv, or JSON otherwise); "
                          "requires --metrics-interval")
    cmd.add_argument("--sharing-out", metavar="FILE",
                     help="record sharing-pattern analytics and write the "
                          "repro.obs.sharing/1 diagnosis report as JSON "
                          "(see 'repro diagnose' for the full pipeline)")


def _apply_obs(config, args) -> None:
    """Fold the observability flags into the cluster config."""
    if getattr(args, "metrics_out", None) and args.metrics_interval is None:
        raise SystemExit("--metrics-out requires --metrics-interval")
    if getattr(args, "trace_out", None):
        config.observe = True
    if getattr(args, "sharing_out", None):
        config.sharing = True
    if getattr(args, "metrics_interval", None) is not None:
        config.metrics_interval = args.metrics_interval


def _export_obs(plat, args) -> None:
    """Write the requested trace/metrics files after a run."""
    from repro.tools.export import write_text

    if getattr(args, "trace_out", None):
        from repro.obs import chrome_trace_json

        write_text(args.trace_out, chrome_trace_json(
            plat.obs, metrics=plat.metrics,
            platform_name=plat.hamster.platform_description()))
        print(f"trace    : written to {args.trace_out}")
    if getattr(args, "metrics_out", None):
        path = args.metrics_out
        text = (plat.metrics.to_csv() if path.endswith(".csv")
                else plat.metrics.to_json())
        write_text(path, text)
        print(f"metrics  : written to {path} ({len(plat.metrics)} samples)")
    if getattr(args, "sharing_out", None):
        import json as _json

        from repro.obs import sharing_report

        doc = sharing_report(plat.sharing,
                             platform_name=plat.hamster.platform_description(),
                             n_ranks=plat.dsm.n_procs,
                             page_size=plat.dsm.space.page_size)
        write_text(args.sharing_out, _json.dumps(doc, indent=2,
                                                 sort_keys=True))
        print(f"sharing  : written to {args.sharing_out} "
              f"({len(doc['ping_pong'])} ping-pong pages, "
              f"{len(doc['false_sharing']['pages'])} false sharing)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HAMSTER reproduction driver")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one benchmark on one platform")
    target = run.add_mutually_exclusive_group()
    target.add_argument("--preset", default="sw-dsm-4",
                        help=f"platform preset ({', '.join(sorted(PRESETS))})")
    target.add_argument("--config", help="cluster configuration file")
    run.add_argument("--app", required=True,
                     help=f"benchmark ({', '.join(sorted(APP_TABLE))})")
    run.add_argument("--param", action="append", type=_parse_param,
                     default=[], metavar="NAME=VALUE",
                     help="benchmark parameter override (repeatable)")
    run.add_argument("--native", action="store_true",
                     help="bind the JiaJia API natively (Figure 2 baseline)")
    run.add_argument("--profile", action="store_true",
                     help="print the tools.profile report after the run")
    run.add_argument("--json", metavar="PATH",
                     help="write the run result (+ profile) as JSON")
    _add_fault_options(run)
    _add_obs_options(run)

    chaos = sub.add_parser(
        "chaos", help="run one benchmark under a seeded fault plan")
    ctarget = chaos.add_mutually_exclusive_group()
    ctarget.add_argument("--preset", default="sw-dsm-2",
                         help=f"platform preset ({', '.join(sorted(PRESETS))})")
    ctarget.add_argument("--config", help="cluster configuration file")
    chaos.add_argument("--app", default="sor",
                       help=f"benchmark ({', '.join(sorted(APP_TABLE))})")
    chaos.add_argument("--param", action="append", type=_parse_param,
                       default=[], metavar="NAME=VALUE",
                       help="benchmark parameter override (repeatable)")
    _add_fault_options(chaos)
    chaos.add_argument("--drop-rate", type=float, metavar="P",
                       help="override the plan's per-message drop probability")
    chaos.add_argument("--crash", action="append", type=_parse_crash,
                       default=[], metavar="NODE@AT[@RESTART]",
                       help="crash NODE at virtual time AT seconds, "
                            "optionally restarting at RESTART (repeatable)")
    _add_obs_options(chaos)

    trace = sub.add_parser(
        "trace", help="instrumented run: critical-path report + trace export")
    trace.add_argument("--validate", metavar="FILE",
                       help="validate an exported Chrome trace JSON file "
                            "and exit (no run)")
    ttarget = trace.add_mutually_exclusive_group()
    ttarget.add_argument("--preset", default="sw-dsm-4",
                         help=f"platform preset ({', '.join(sorted(PRESETS))})")
    ttarget.add_argument("--config", help="cluster configuration file")
    trace.add_argument("--app", default="sor",
                       help=f"benchmark ({', '.join(sorted(APP_TABLE))})")
    trace.add_argument("--param", action="append", type=_parse_param,
                       default=[], metavar="NAME=VALUE",
                       help="benchmark parameter override (repeatable)")
    trace.add_argument("--path-top", type=int, default=8, metavar="N",
                       help="critical-chain entries to print (default 8)")
    _add_fault_options(trace)
    _add_obs_options(trace)

    diag = sub.add_parser(
        "diagnose", help="sharing diagnosis: ping-pong/false-sharing "
                         "detection, hot pages/locks, barrier skew")
    diag.add_argument("--validate", metavar="FILE",
                      help="validate an exported sharing report JSON file "
                           "and exit (no run)")
    dtarget = diag.add_mutually_exclusive_group()
    dtarget.add_argument("--preset", default="sw-dsm-4",
                         help=f"platform preset ({', '.join(sorted(PRESETS))})")
    dtarget.add_argument("--config", help="cluster configuration file")
    diag.add_argument("--app", default="sor",
                      help=f"benchmark ({', '.join(sorted(APP_TABLE))})")
    diag.add_argument("--param", action="append", type=_parse_param,
                      default=[], metavar="NAME=VALUE",
                      help="benchmark parameter override (repeatable)")
    diag.add_argument("--top", type=int, default=10, metavar="N",
                      help="hot pages/locks to report (default 10)")
    diag.add_argument("--min-alternations", type=int, default=4, metavar="N",
                      help="writer handoffs before a page counts as "
                           "ping-pong (default 4)")
    diag.add_argument("--min-rate", type=float, default=0.0, metavar="HZ",
                      help="minimum handoff rate (per virtual second) "
                           "before a page counts as ping-pong (default 0)")
    diag.add_argument("--json-out", metavar="FILE",
                      help="write the repro.obs.sharing/1 report as JSON")
    diag.add_argument("--heatmap-out", metavar="FILE",
                      help="write the per-page virtual-time heatmap CSV")
    diag.add_argument("--trace-out", metavar="FILE",
                      help="write Chrome counter tracks for the hottest "
                           "pages (load next to the span trace)")
    diag.add_argument("--bins", type=int, default=50, metavar="N",
                      help="time bins for heatmap/trace export (default 50)")
    _add_fault_options(diag)

    bench = sub.add_parser(
        "bench", help="benchmark telemetry: run suites, gate regressions")
    bsub = bench.add_subparsers(dest="bench_command", required=True)

    brun = bsub.add_parser("run", help="run a suite, record telemetry")
    brun.add_argument("--suite", default="smoke",
                      help="suite name (smoke, paper)")
    brun.add_argument("--scale", type=float, default=None,
                      help="override the suite's working-set scale")
    brun.add_argument("--repeat", type=int, default=1, metavar="N",
                      help="host-time repeats per benchmark (min-of-N; "
                           "virtual times must be identical)")
    brun.add_argument("--only", metavar="SUBSTR",
                      help="run only unit ids containing SUBSTR "
                           "(e.g. 'sw-dsm-2/PI')")
    brun.add_argument("--json-out", metavar="FILE",
                      help="write the telemetry document (BENCH_<suite>.json)")
    brun.add_argument("--profile", action="store_true",
                      help="cProfile the whole suite and print the host "
                           "hot-function worklist")
    brun.add_argument("--baseline", metavar="FILE",
                      help="compare against this baseline right after "
                           "running (exit non-zero on hard regression)")
    brun.add_argument("--cache", metavar="DIR", dest="cache_dir",
                      help="consult (and fill) the fabric's content-"
                           "addressed result cache in DIR; cells already "
                           "computed — by any run or sweep — are not "
                           "re-simulated")
    brun.add_argument("--sharing", action="store_true",
                      help="attach the sharing-pattern rollup (ping-pong/"
                           "false-sharing counts, hot page/lock, barrier "
                           "skew) to every record; bypasses --cache")

    bcmp = bsub.add_parser(
        "compare", help="compare recorded telemetry against a baseline")
    bcmp.add_argument("--json", required=True, metavar="FILE",
                      help="telemetry document to check (from bench run)")
    bcmp.add_argument("--baseline", metavar="FILE",
                      help="baseline document (default: "
                           "benchmarks/baselines/<suite>.json)")
    bcmp.add_argument("--threshold", action="append", type=_parse_param,
                      default=[], metavar="METRIC=PCT",
                      help="per-metric threshold override in percent "
                           "(repeatable)")
    bcmp.add_argument("--no-shape", action="store_true",
                      help="skip the paper-shape gate")
    bcmp.add_argument("--show-ok", action="store_true",
                      help="also list metrics whose verdict is 'ok'")

    bupd = bsub.add_parser(
        "update-baseline", help="promote a telemetry document to baseline")
    bupd.add_argument("--json", metavar="FILE",
                      help="telemetry document to promote (omit to run the "
                           "suite fresh)")
    bupd.add_argument("--suite", default="smoke",
                      help="suite to run when --json is omitted")
    bupd.add_argument("--repeat", type=int, default=3, metavar="N",
                      help="repeats when running fresh (default 3)")
    bupd.add_argument("--baseline", metavar="FILE",
                      help="target path (default: "
                           "benchmarks/baselines/<suite>.json)")

    bscale = bsub.add_parser(
        "scaling", help="run the node-count scaling curves, record telemetry")
    bscale.add_argument("--fabric", action="append", choices=("eth", "sci"),
                        default=None, metavar="FABRIC",
                        help="fabric curve to run (repeatable; default both)")
    bscale.add_argument("--max-nodes", type=int, default=256, metavar="N",
                        help="largest ladder point to include (default 256; "
                             "use 1024 for the full curve)")
    bscale.add_argument("--label", default=None, metavar="LABEL",
                        help="workload label (default PI)")
    bscale.add_argument("--scale", type=float, default=None,
                        help="working-set scale (default 0.05)")
    bscale.add_argument("--repeat", type=int, default=1, metavar="N",
                        help="host-time repeats per point (min-of-N)")
    bscale.add_argument("--json-out", metavar="FILE",
                        help="write the telemetry document")
    bscale.add_argument("--baseline", metavar="FILE",
                        help="compare against this baseline right after "
                             "running (exit non-zero on hard regression)")

    brep = bsub.add_parser(
        "report", help="render telemetry as markdown or HTML")
    brep.add_argument("--json", required=True, metavar="FILE",
                      help="telemetry document to render")
    brep.add_argument("--baseline", metavar="FILE",
                      help="baseline to include a comparison section")
    brep.add_argument("--metrics", metavar="FILE",
                      help="metrics-sampler JSON (--metrics-out of 'run') "
                           "to merge in")
    brep.add_argument("--out", metavar="FILE",
                      help="output path (.html renders HTML; default: "
                           "markdown to stdout)")

    sweep = sub.add_parser(
        "sweep", help="parallel experiment fabric: cached grid sweeps")
    ssub = sweep.add_subparsers(dest="sweep_command", required=True)

    def _failure_policy_args(p) -> None:
        p.add_argument("--max-retries", type=int, default=1, metavar="N",
                       help="re-queue a crashed/timed-out job this many "
                            "times before recording it failed (default: 1)")
        p.add_argument("--max-failures", type=int, default=None, metavar="N",
                       help="abort the sweep (drain, exit 4) after N "
                            "terminally failed cells (default: no budget)")
        p.add_argument("--retry-backoff", type=float, default=0.5,
                       metavar="SECONDS",
                       help="base delay before a retry, doubling per "
                            "attempt (default: 0.5; 0 disables)")

    srun = ssub.add_parser("run", help="run a grid over worker processes")
    srun.add_argument("--grid", required=True, metavar="FILE",
                      help="grid spec JSON (axes: presets, labels, scales, "
                           "nodes, overrides, faults)")
    srun.add_argument("--dir", dest="sweep_dir", metavar="DIR",
                      help="sweep directory: journal, event log, manifest, "
                           "telemetry, and a copy of the grid all default "
                           "to files inside it ('sweep resume DIR' and "
                           "'sweep status --dir DIR' consume it)")
    srun.add_argument("--workers", type=int, default=1, metavar="N",
                      help="worker processes (1 = inline serial reference "
                           "path)")
    srun.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="content-addressed result cache "
                           "(default: .fabric-cache)")
    srun.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                      help="per-cell wall-clock timeout (overrides the "
                           "grid's own; needs workers >= 2 to preempt)")
    srun.add_argument("--json-out", metavar="FILE",
                      help="write the sweep's telemetry document "
                           "(bench compare/report consume it unchanged)")
    srun.add_argument("--manifest", metavar="FILE",
                      help="write the per-cell manifest JSON")
    srun.add_argument("--events", metavar="FILE",
                      help="write the structured event log (JSONL; 'sweep "
                           "watch' and 'sweep report' consume it)")
    srun.add_argument("--journal", metavar="FILE",
                      help="write the durable write-ahead journal "
                           "('sweep resume' restarts from it after a crash)")
    srun.add_argument("--heartbeat", type=float, default=None,
                      metavar="SECONDS",
                      help="worker heartbeat interval (default: 1.0; "
                           "heartbeats surface in-cell progress and "
                           "progress-at-kill for timed-out cells)")
    _failure_policy_args(srun)
    srun.add_argument("--expect-cached", action="store_true",
                      help="exit 3 unless the sweep was 100%% cache hits "
                           "with zero simulated events (CI's rerun gate)")

    sres = ssub.add_parser(
        "resume", help="resume an interrupted sweep from its journal")
    sres.add_argument("sweep_dir", metavar="DIR",
                      help="sweep directory written by 'sweep run --dir' "
                           "(or any directory holding journal.jsonl)")
    sres.add_argument("--journal", metavar="FILE",
                      help="journal path (default: DIR/journal.jsonl)")
    sres.add_argument("--grid", metavar="FILE",
                      help="grid spec (default: the grid embedded in the "
                           "journal header)")
    sres.add_argument("--workers", type=int, default=None, metavar="N",
                      help="worker processes (default: the journal's)")
    sres.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="result cache (default: the journal's)")
    sres.add_argument("--timeout", type=float, default=None,
                      metavar="SECONDS", help="per-cell timeout override")
    sres.add_argument("--heartbeat", type=float, default=None,
                      metavar="SECONDS", help="worker heartbeat interval")
    sres.add_argument("--retry-failed", action="store_true",
                      help="also re-execute cells whose committed outcome "
                           "was 'failed' (default: restore them as-is)")
    _failure_policy_args(sres)

    sfsck = ssub.add_parser(
        "fsck", help="verify cache integrity; quarantine corrupt entries")
    sfsck.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache to scan (default: .fabric-cache)")
    sfsck.add_argument("--repair", action="store_true",
                       help="move corrupt entries to <cache>/quarantine/ "
                            "(default: report only, exit 1 if any found)")

    sshow = ssub.add_parser(
        "show", help="expand a grid and probe the cache without running")
    sshow.add_argument("--grid", required=True, metavar="FILE",
                       help="grid spec JSON")
    sshow.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache to probe (default: .fabric-cache)")

    sstat = ssub.add_parser(
        "status", help="render a stored manifest, or a live/interrupted "
                       "sweep's resumability from its journal")
    sstat.add_argument("--manifest", metavar="FILE",
                       help="manifest JSON written by 'sweep run'")
    sstat.add_argument("--journal", metavar="FILE",
                       help="journal to replay (lock-free: safe on a live "
                            "sweep; reports committed/pending cells)")
    sstat.add_argument("--dir", dest="sweep_dir", metavar="DIR",
                       help="sweep directory (reads DIR/journal.jsonl)")
    sstat.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache to report quarantine counts from "
                            "(default: the journal's cache_dir)")

    swatch = ssub.add_parser(
        "watch", help="live fleet console over a sweep's event log")
    swatch.add_argument("--events", required=True, metavar="FILE",
                        help="event log (JSONL) of a live or finished sweep")
    swatch.add_argument("--once", action="store_true",
                        help="render one snapshot and exit (CI-friendly)")
    swatch.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh period while tailing (default: 2.0)")

    srep = ssub.add_parser(
        "report", help="fleet report: JSON / Prometheus text / Chrome trace")
    srep.add_argument("--events", required=True, metavar="FILE",
                      help="event log (JSONL) written by 'sweep run'")
    srep.add_argument("--manifest", metavar="FILE",
                      help="join the sweep manifest (cache stats)")
    srep.add_argument("--telemetry", metavar="FILE",
                      help="join the telemetry document "
                           "(critical-path category totals)")
    srep.add_argument("--json-out", metavar="FILE",
                      help="write the fleet report as JSON")
    srep.add_argument("--prom-out", metavar="FILE",
                      help="write a Prometheus-style text exposition")
    srep.add_argument("--trace-out", metavar="FILE",
                      help="write the sweep Chrome trace "
                           "(one track per worker)")

    sub.add_parser("platforms", help="list platform presets")
    sub.add_parser("apps", help="list benchmarks and working sets")

    exp = sub.add_parser("experiments", help="regenerate all tables/figures")
    exp.add_argument("--scale", type=float, default=1.0,
                     help="working-set scale (1.0 = paper sizes)")
    exp.add_argument("--json-out", metavar="FILE",
                     help="also record raw+derived numbers as JSON")
    exp.add_argument("--workers", type=int, default=1, metavar="N",
                     help="parallelize the figure grid through the fabric")
    exp.add_argument("--cache-dir", metavar="DIR",
                     help="fabric result cache for the figure grid")
    return parser


def _resolve_plan(args):
    """Fault plan from --fault-seed / --fault-plan, or None."""
    if getattr(args, "fault_plan", None):
        from repro.faults import FaultPlan

        return FaultPlan.load(args.fault_plan)
    if getattr(args, "fault_seed", None) is not None:
        from repro.faults import FaultPlan

        return FaultPlan.seeded(args.fault_seed)
    return None


def _cmd_run(args) -> int:
    from repro.apps import get_app
    from repro.apps.common import merge_rank_results
    from repro.models.jiajia_api import JiaJiaApi
    from repro.models.native_jiajia import NativeJiaJiaApi

    config = load(args.config) if args.config else preset(args.preset)
    plan = _resolve_plan(args)
    if plan is not None:
        config.faults = plan
    _apply_obs(config, args)
    params: Dict[str, Any] = dict(args.param)
    plat = config.build()
    api = NativeJiaJiaApi(plat.hamster) if args.native else JiaJiaApi(plat.hamster)
    fn = get_app(args.app)
    profiler = timers = None
    if args.profile:
        from repro.bench.hostprof import HostProfiler, PhaseWallTimers

        profiler = HostProfiler()
        timers = PhaseWallTimers().attach(plat)
    do_run = lambda: api.run(functools.partial(fn, **params))  # noqa: E731
    per_rank = profiler.run(do_run) if profiler is not None else do_run()
    if timers is not None:
        timers.detach()
    merged = merge_rank_results(per_rank)

    print(f"platform : {plat.hamster.platform_description()}"
          f"{' [native binding]' if args.native else ''}")
    print(f"benchmark: {args.app} {params or ''}")
    print(f"verified : {merged.verified}")
    for phase, seconds in sorted(merged.phases.items()):
        print(f"  {phase:>10s}: {seconds * 1e3:10.3f} ms")
    if args.profile:
        from repro.tools import profile_platform

        print()
        print(profile_platform(plat, host_profiler=profiler,
                               phase_timers=timers).render())
    if args.json:
        from repro.tools.export import run_to_json, write_text

        write_text(args.json, run_to_json(merged, platform=plat))
        print(f"json     : written to {args.json}")
    _export_obs(plat, args)
    return 0 if merged.verified else 1


def _cmd_chaos(args) -> int:
    import dataclasses

    from repro.faults import FaultPlan, run_chaos

    config = load(args.config) if args.config else preset(args.preset)
    plan = _resolve_plan(args)
    if plan is None:
        plan = (FaultPlan.coerce(config.faults)
                if config.faults is not None else FaultPlan.seeded(0))
    if args.drop_rate is not None:
        plan = plan.with_overrides(
            link=dataclasses.replace(plan.link, drop_rate=args.drop_rate))
    if args.crash:
        plan = plan.with_overrides(crashes=plan.crashes + tuple(args.crash))
    _apply_obs(config, args)
    result = run_chaos(config, app=args.app, app_params=dict(args.param),
                       plan=plan)
    print(result.summary())
    if result.built is not None:
        _export_obs(result.built, args)
    if result.outcome == "completed":
        return 0 if result.verified else 1
    # A typed failure is the *expected* outcome when the plan kills a node
    # for good; only unexplained failures are an error exit.
    return 0 if (result.outcome == "node-failed"
                 and plan.has_permanent_crash()) else 2


def _cmd_trace(args) -> int:
    if args.validate:
        import json

        from repro.obs import validate_chrome_trace

        with open(args.validate, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        errors = validate_chrome_trace(doc)
        if errors:
            for err in errors:
                print(f"invalid: {err}")
            return 1
        print(f"valid Chrome trace: {args.validate} "
              f"({len(doc['traceEvents'])} events)")
        return 0

    from repro.apps import get_app
    from repro.apps.common import merge_rank_results
    from repro.models.jiajia_api import JiaJiaApi
    from repro.obs import critical_path_report

    config = load(args.config) if args.config else preset(args.preset)
    plan = _resolve_plan(args)
    if plan is not None:
        config.faults = plan
    config.observe = True  # the whole point of this subcommand
    _apply_obs(config, args)
    params: Dict[str, Any] = dict(args.param)
    plat = config.build()
    api = JiaJiaApi(plat.hamster)
    fn = get_app(args.app)
    merged = merge_rank_results(api.run(functools.partial(fn, **params)))
    print(f"platform : {plat.hamster.platform_description()}")
    print(f"benchmark: {args.app} {params or ''}")
    print(f"verified : {merged.verified}")
    print(f"spans    : {len(plat.obs)}")
    print()
    print(critical_path_report(plat).render(path_top=args.path_top))
    _export_obs(plat, args)
    return 0 if merged.verified else 1


def _cmd_diagnose(args) -> int:
    import json

    if args.validate:
        from repro.obs import validate_sharing_report

        with open(args.validate, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        errors = validate_sharing_report(doc)
        if errors:
            for err in errors:
                print(f"invalid: {err}")
            return 1
        print(f"valid sharing report: {args.validate} "
              f"({len(doc['ping_pong'])} ping-pong pages, "
              f"{len(doc['false_sharing']['pages'])} false sharing)")
        return 0

    from repro.apps import get_app
    from repro.apps.common import merge_rank_results
    from repro.models.jiajia_api import JiaJiaApi
    from repro.obs import (render_sharing_report, sharing_chrome_trace,
                           sharing_heatmap_csv, sharing_report)
    from repro.tools.export import write_text

    config = load(args.config) if args.config else preset(args.preset)
    plan = _resolve_plan(args)
    if plan is not None:
        config.faults = plan
    config.sharing = True  # the whole point of this subcommand
    params: Dict[str, Any] = dict(args.param)
    plat = config.build()
    api = JiaJiaApi(plat.hamster)
    fn = get_app(args.app)
    merged = merge_rank_results(api.run(functools.partial(fn, **params)))
    pname = plat.hamster.platform_description()
    doc = sharing_report(plat.sharing, platform_name=pname,
                         n_ranks=plat.dsm.n_procs,
                         page_size=plat.dsm.space.page_size,
                         top=args.top,
                         min_alternations=args.min_alternations,
                         min_rate=args.min_rate)
    print(f"platform : {pname}")
    print(f"benchmark: {args.app} {params or ''}")
    print(f"verified : {merged.verified}")
    print()
    print(render_sharing_report(doc))
    if args.json_out:
        write_text(args.json_out, json.dumps(doc, indent=2, sort_keys=True))
        print(f"report   : written to {args.json_out}")
    if args.heatmap_out:
        write_text(args.heatmap_out,
                   sharing_heatmap_csv(plat.sharing, bins=args.bins))
        print(f"heatmap  : written to {args.heatmap_out}")
    if args.trace_out:
        trace = sharing_chrome_trace(plat.sharing, platform_name=pname,
                                     top=args.top, bins=args.bins)
        write_text(args.trace_out, json.dumps(trace))
        print(f"trace    : written to {args.trace_out} "
              f"({len(trace['traceEvents'])} events)")
    return 0 if merged.verified else 1


def _default_baseline_path(suite: str) -> str:
    import os.path

    return os.path.join("benchmarks", "baselines", f"{suite}.json")


def _print_bench_summary(doc) -> None:
    from repro.bench.report import render_table

    rows = []
    for rec in doc["records"]:
        cp = rec["critical_path"]
        cp_total = sum(cp.values()) or 1.0
        rows.append([rec["id"], f"{rec['virtual_seconds'] * 1e3:.3f}",
                     rec["events_executed"],
                     f"{rec['events_per_sec']:,.0f}",
                     f"{rec['host_seconds'] * 1e3:.1f}",
                     f"{100.0 * cp.get('compute', 0.0) / cp_total:.0f}%"])
    print(render_table(
        ["benchmark", "virtual ms", "events", "events/s", "host ms",
         "compute"],
        rows, title=f"suite {doc['suite']!r} at scale {doc['scale']} "
                    f"({len(rows)} benchmarks, repeat {doc['repeat']})"))


def _bench_compare(doc, baseline_path, thresholds=None, shape=True,
                   show_ok=False) -> int:
    import os.path

    from repro.bench.baseline import compare_docs
    from repro.bench.telemetry import load_telemetry

    if not os.path.exists(baseline_path):
        print(f"no baseline at {baseline_path} — every benchmark is new; "
              f"seed one with: python -m repro bench update-baseline "
              f"--suite {doc['suite']}")
        return 1
    baseline = load_telemetry(baseline_path)
    result = compare_docs(doc, baseline, thresholds_pct=thresholds,
                          shape=shape)
    print(result.render(show_ok=show_ok))
    return result.exit_code()


def _cmd_bench(args) -> int:
    from repro.bench.telemetry import (load_telemetry, run_suite_telemetry,
                                       telemetry_to_json, validate_telemetry)
    from repro.tools.export import write_text

    if args.bench_command == "run":
        profiler = None
        if args.profile:
            from repro.bench.hostprof import HostProfiler

            profiler = HostProfiler(top=20)
        cache = None
        if args.cache_dir:
            from repro.fabric import ResultCache, TelemetryCache

            cache = TelemetryCache(ResultCache(args.cache_dir))
        doc = run_suite_telemetry(
            args.suite, scale=args.scale, repeat=args.repeat, only=args.only,
            profiler=profiler, cache=cache, sharing=args.sharing,
            progress=lambda unit: print(f"[bench] {unit}"))
        if not doc["records"]:
            print(f"--only {args.only!r} matched no benchmark in suite "
                  f"{args.suite!r}")
            return 2
        errors = validate_telemetry(doc)
        if errors:  # a telemetry bug, not a perf problem — fail loudly
            for err in errors:
                print(f"schema error: {err}")
            return 2
        print()
        _print_bench_summary(doc)
        if cache is not None:
            store = cache.store
            print(f"cache    : {store.hits} hit(s), {store.misses} miss(es) "
                  f"in {store.root}")
        if args.json_out:
            write_text(args.json_out, telemetry_to_json(doc))
            print(f"telemetry: written to {args.json_out}")
        if profiler is not None:
            print()
            print(profiler.render())
        if args.baseline:
            print()
            return _bench_compare(doc, args.baseline)
        return 0

    if args.bench_command == "compare":
        doc = load_telemetry(args.json)
        baseline_path = args.baseline or _default_baseline_path(doc["suite"])
        thresholds = {k: float(v) for k, v in args.threshold}
        return _bench_compare(doc, baseline_path, thresholds=thresholds,
                              shape=not args.no_shape, show_ok=args.show_ok)

    if args.bench_command == "update-baseline":
        if args.json:
            doc = load_telemetry(args.json)
        else:
            doc = run_suite_telemetry(
                args.suite, repeat=args.repeat,
                progress=lambda unit: print(f"[bench] {unit}"))
        target = args.baseline or _default_baseline_path(doc["suite"])
        import os

        os.makedirs(os.path.dirname(target) or ".", exist_ok=True)
        write_text(target, telemetry_to_json(doc))
        print(f"baseline : {len(doc['records'])} records written to {target}")
        return 0

    if args.bench_command == "scaling":
        from repro.bench.scaling import (DEFAULT_LABEL, DEFAULT_SCALE,
                                         render_scaling, run_scaling_curves)

        doc = run_scaling_curves(
            fabrics=tuple(args.fabric) if args.fabric else ("eth", "sci"),
            max_nodes=args.max_nodes,
            label=args.label or DEFAULT_LABEL,
            scale=args.scale if args.scale is not None else DEFAULT_SCALE,
            repeat=args.repeat,
            progress=lambda point: print(f"[scaling] {point}"))
        errors = validate_telemetry(doc)
        if errors:
            for err in errors:
                print(f"schema error: {err}")
            return 2
        print()
        print(render_scaling(doc))
        if args.json_out:
            write_text(args.json_out, telemetry_to_json(doc))
            print(f"telemetry: written to {args.json_out}")
        if args.baseline:
            print()
            return _bench_compare(doc, args.baseline, shape=False)
        return 0

    if args.bench_command == "report":
        import json as _json
        import os.path

        from repro.bench.report import telemetry_html, telemetry_markdown

        doc = load_telemetry(args.json)
        compare = None
        if args.baseline and os.path.exists(args.baseline):
            from repro.bench.baseline import compare_docs

            compare = compare_docs(doc, load_telemetry(args.baseline))
        metrics = None
        if args.metrics:
            with open(args.metrics, "r", encoding="utf-8") as fh:
                metrics = _json.load(fh)
        if args.out and args.out.endswith(".html"):
            text = telemetry_html(doc, compare=compare, metrics=metrics)
        else:
            text = telemetry_markdown(doc, compare=compare, metrics=metrics)
        if args.out:
            write_text(args.out, text)
            print(f"report   : written to {args.out}")
        else:
            print(text)
        return 0

    raise AssertionError(
        f"unhandled bench command {args.bench_command!r}")  # pragma: no cover


def _sweep_watch(args) -> int:
    """The ``sweep watch`` console: tail an event log, render the fleet."""
    import time as _time

    from repro.fabric.events import (read_events, tail_events,
                                     validate_events)
    from repro.obs.fleet import FleetReport

    errors = validate_events(args.events)
    if errors:
        for err in errors:
            print(f"event log error: {err}")
        return 2
    header, events = read_events(args.events)
    report = FleetReport(header, events)
    print(report.render())
    if args.once:
        return 0
    # Live mode: tail complete lines until the sweep-end event appears.
    offset = 0
    with open(args.events, "rb") as fh:
        fh.seek(0, 2)
        offset = fh.tell()
    try:
        while not report.finished:
            _time.sleep(max(args.interval, 0.1))
            fresh, offset = tail_events(args.events, offset)
            if not fresh:
                continue
            events.extend(fresh)
            report = FleetReport(header, events)
            print()
            print(report.render())
    except KeyboardInterrupt:
        pass
    return 0


def _sweep_report(args) -> int:
    """The ``sweep report`` exporter: fleet JSON / Prometheus / trace."""
    import json as _json

    from repro.obs.export import validate_chrome_trace
    from repro.obs.fleet import fleet_report_from_path
    from repro.tools.export import write_text

    try:
        report = fleet_report_from_path(args.events,
                                        manifest_path=args.manifest,
                                        telemetry_path=args.telemetry)
    except (OSError, ValueError) as exc:
        # A missing or truncated log is an operator mistake, not a
        # crash: one line, nonzero exit, no traceback.
        print(f"sweep report: cannot read {args.events}: {exc}")
        return 2
    if not any(ev.get("kind") == "sweep-begin" for ev in report.events):
        print(f"sweep report: {args.events} has no 'sweep-begin' event — "
              f"header-only log (the sweep never started, or this is not "
              f"an event log)")
        return 2
    if args.json_out:
        write_text(args.json_out, report.to_json())
        print(f"fleet json : written to {args.json_out}")
    if args.prom_out:
        write_text(args.prom_out, report.to_prometheus())
        print(f"prometheus : written to {args.prom_out}")
    if args.trace_out:
        trace = report.chrome_trace()
        errors = validate_chrome_trace(trace)
        if errors:  # a fleet bug, not a sweep problem — fail loudly
            for err in errors:
                print(f"trace schema error: {err}")
            return 2
        write_text(args.trace_out, _json.dumps(trace, sort_keys=True) + "\n")
        print(f"trace      : written to {args.trace_out}")
    if not (args.json_out or args.prom_out or args.trace_out):
        print(report.to_json(), end="")
    return 0


def _sweep_status_from_journal(args) -> int:
    """Resumability report: replay the journal, no locks, live-safe."""
    import os as _os

    from repro.fabric import JournalError, ResultCache, replay_journal

    journal = args.journal or _os.path.join(args.sweep_dir, "journal.jsonl")
    try:
        state = replay_journal(journal)
    except JournalError as exc:
        print(f"sweep status: {exc}")
        return 2
    header = state.header
    total = int(header.get("cells", 0))
    counts = state.counts()
    pending = state.pending(total)
    print(f"sweep {header.get('suite', '?')!r} journal {journal}: "
          f"{total} cells — {len(state.committed)} committed "
          f"({counts.get('hit', 0)} hit / {counts.get('miss', 0)} miss / "
          f"{counts.get('failed', 0)} failed), {len(pending)} pending")
    status = state.status or "in flight (no terminal status recorded)"
    print(f"status   : {status}")
    if state.torn_bytes is not None:
        print("journal  : torn trailing line (crash mid-write; resume "
              "repairs it)")
    cache_dir = args.cache_dir or header.get("cache_dir")
    if cache_dir:
        stats = ResultCache(cache_dir).stats()
        quarantined = stats.get("quarantined", 0)
        print(f"cache    : {stats.get('entries', 0)} entries in {cache_dir}"
              + (f"; {quarantined} quarantined — run 'sweep fsck'"
                 if quarantined else ""))
    if pending:
        print(f"resume   : 'sweep resume "
              f"{args.sweep_dir or _os.path.dirname(journal) or '.'}' "
              f"re-executes the {len(pending)} pending cell(s)")
    return 0 if not counts.get("failed") else 1


def _sweep_fsck(args) -> int:
    """Cache integrity scan; quarantines corrupt entries with --repair."""
    from repro.fabric import DEFAULT_CACHE_DIR, ResultCache

    cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    report = cache.fsck(repair=args.repair)
    print(f"fsck {report['root']}: {report['checked']} entr(ies) checked — "
          f"{report['ok']} ok, {report['stale']} stale (old schema), "
          f"{len(report['corrupt'])} corrupt")
    for item in report["corrupt"]:
        print(f"fsck   corrupt: {item['path']} ({item['reason']})")
    for moved in report["quarantined"]:
        print(f"fsck   quarantined -> {moved}")
    if report["quarantine_entries"]:
        print(f"fsck {report['quarantine_entries']} entr(ies) in "
              f"{cache.quarantine_dir()}")
    if report["corrupt"] and not args.repair:
        print("fsck: corrupt entries found (re-run with --repair to "
              "quarantine them)")
        return 1
    return 0


def _finish_sweep(result, json_out, manifest_path, events_path,
                  expect_cached: bool = False) -> int:
    """Shared tail of ``sweep run`` / ``sweep resume``: write the
    outputs, name the offenders, map the sweep status to an exit code
    (0 ok, 1 failed cells, 2 schema, 3 expect-cached, 4 aborted,
    5 interrupted)."""
    from repro.bench.telemetry import telemetry_to_json, validate_telemetry
    from repro.tools.export import write_text

    manifest = result.manifest
    print()
    print(manifest.render())
    if result.doc is not None:
        errors = validate_telemetry(result.doc)
        if errors:  # a fabric bug, not a perf problem — fail loudly
            for err in errors:
                print(f"schema error: {err}")
            return 2
        if json_out:
            write_text(json_out, telemetry_to_json(result.doc))
            print(f"telemetry: written to {json_out}")
    elif json_out:
        print("telemetry: no successful cells, nothing written")
    if manifest_path:
        manifest.save(manifest_path)
        print(f"manifest : written to {manifest_path}")
    if events_path:
        print(f"events   : written to {events_path} "
              f"({len(result.event_log or ())} event(s))")
    if expect_cached and not manifest.all_cached():
        counts = manifest.counts()
        print(f"expect-cached: FAILED — {counts['miss']} miss(es), "
              f"{counts['failed']} failure(s), "
              f"{manifest.simulated_events()} simulated events")
        for cell in manifest.cells:
            if cell.outcome != "hit":   # name the offenders
                print(f"expect-cached:   {cell.outcome}: {cell.id} "
                      f"({cell.key[:12]})")
        return 3
    if result.status == "aborted":
        print("sweep: aborted — the --max-failures budget tripped; "
              "'sweep resume' picks up the pending cells")
        return 4
    if result.status == "interrupted":
        print("sweep: interrupted — drained cleanly; 'sweep resume' "
              "picks up the pending cells")
        return 5
    return 0 if not manifest.failed_cells() else 1


def _sweep_resume(args) -> int:
    """``sweep resume DIR``: restore committed cells, run the rest."""
    import os as _os

    from repro.fabric import (GridSpec, JournalError, ResultCache,
                              replay_journal, run_sweep)

    journal = args.journal or _os.path.join(args.sweep_dir, "journal.jsonl")
    try:
        state = replay_journal(journal)
    except JournalError as exc:
        print(f"sweep resume: {exc}")
        return 2
    header = state.header
    if args.grid:
        spec = GridSpec.load(args.grid)
    elif isinstance(header.get("grid"), dict):
        spec = GridSpec.from_dict(header["grid"])
    else:
        print(f"sweep resume: {journal} has no embedded grid — "
              f"pass --grid FILE")
        return 2
    workers = args.workers or int(header.get("workers", 1))
    cache_dir = args.cache_dir or header.get("cache_dir")
    if not cache_dir:
        print(f"sweep resume: {journal} names no cache_dir — "
              f"pass --cache-dir DIR")
        return 2
    total = int(header.get("cells", 0))
    pending = state.pending(total)
    print(f"[sweep] resuming {header.get('suite', spec.suite)!r}: "
          f"{len(state.committed)}/{total} cells committed, "
          f"{len(pending)} to run")
    result = run_sweep(
        spec, workers=workers, cache=ResultCache(cache_dir),
        timeout=args.timeout,
        events=_os.path.join(args.sweep_dir, "events.jsonl"),
        heartbeat=args.heartbeat if args.heartbeat is not None else 1.0,
        journal=journal, resume_from=state,
        retry_failed=args.retry_failed, max_retries=args.max_retries,
        max_failures=args.max_failures, retry_backoff=args.retry_backoff,
        handle_signals=True,
        progress=lambda cell, outcome: print(f"[sweep] {cell}: {outcome}"))
    return _finish_sweep(
        result,
        json_out=_os.path.join(args.sweep_dir, "telemetry.json"),
        manifest_path=_os.path.join(args.sweep_dir, "manifest.json"),
        events_path=_os.path.join(args.sweep_dir, "events.jsonl"))


def _cmd_sweep(args) -> int:
    from repro.fabric import (DEFAULT_CACHE_DIR, GridSpec, ResultCache,
                              SweepManifest, run_sweep, scenario_key)

    if args.sweep_command == "status":
        if args.journal or args.sweep_dir:
            return _sweep_status_from_journal(args)
        if not args.manifest:
            print("sweep status: pass --manifest FILE, --journal FILE, "
                  "or --dir DIR")
            return 2
        manifest = SweepManifest.load(args.manifest)
        print(manifest.render())
        return 0 if not manifest.failed_cells() else 1

    if args.sweep_command == "fsck":
        return _sweep_fsck(args)

    if args.sweep_command == "resume":
        return _sweep_resume(args)

    if args.sweep_command == "watch":
        return _sweep_watch(args)

    if args.sweep_command == "report":
        return _sweep_report(args)

    spec = GridSpec.load(args.grid)
    cache_dir = args.cache_dir or DEFAULT_CACHE_DIR

    if args.sweep_command == "show":
        cache = ResultCache(cache_dir)
        from repro.bench.report import render_table

        rows = []
        hits = 0
        for sc in spec.expand():
            key = scenario_key(sc)
            cached = key in cache
            hits += cached
            rows.append([sc.cell_id(), key[:12],
                         "hit" if cached else "miss"])
        print(render_table(
            ["cell", "key", "cache"], rows,
            title=f"grid {args.grid}: {len(rows)} cells — "
                  f"{hits} cached, {len(rows) - hits} to run "
                  f"(cache: {cache_dir})"))
        return 0

    if args.sweep_command == "run":
        import os as _os
        import shutil as _shutil

        json_out, manifest_path = args.json_out, args.manifest
        events_path, journal_path = args.events, args.journal
        if args.sweep_dir:
            # The sweep directory bundles every artifact 'sweep resume'
            # and 'sweep status --dir' need; explicit flags still win.
            _os.makedirs(args.sweep_dir, exist_ok=True)
            join = lambda name: _os.path.join(args.sweep_dir, name)  # noqa: E731
            json_out = json_out or join("telemetry.json")
            manifest_path = manifest_path or join("manifest.json")
            events_path = events_path or join("events.jsonl")
            journal_path = journal_path or join("journal.jsonl")
            if _os.path.abspath(args.grid) != _os.path.abspath(
                    join("grid.json")):
                _shutil.copyfile(args.grid, join("grid.json"))
        sweep_kwargs = {}
        if args.heartbeat is not None:
            sweep_kwargs["heartbeat"] = args.heartbeat
        result = run_sweep(
            spec, workers=args.workers, cache_dir=cache_dir,
            timeout=args.timeout, events=events_path, journal=journal_path,
            max_retries=args.max_retries, max_failures=args.max_failures,
            retry_backoff=args.retry_backoff, handle_signals=True,
            progress=lambda cell, outcome: print(f"[sweep] {cell}: {outcome}"),
            **sweep_kwargs)
        return _finish_sweep(result, json_out=json_out,
                             manifest_path=manifest_path,
                             events_path=events_path,
                             expect_cached=args.expect_cached)

    raise AssertionError(
        f"unhandled sweep command {args.sweep_command!r}")  # pragma: no cover


def _cmd_platforms() -> int:
    for name in sorted(PRESETS):
        cfg = PRESETS[name]
        print(f"{name:18s} platform={cfg.platform:8s} dsm={cfg.dsm:7s} "
              f"nodes={cfg.nodes} messaging="
              f"{'integrated' if cfg.integrated_messaging else 'separate'}")
    return 0


def _cmd_apps() -> int:
    for name, entry in APP_TABLE.items():
        print(f"{name:8s} {entry['description']:35s} "
              f"[{entry['working_set']}] defaults={entry['params']}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe (sweep status | head):
        # not an error. Detach stdout so the interpreter's shutdown
        # flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "diagnose":
        return _cmd_diagnose(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "platforms":
        return _cmd_platforms()
    if args.command == "apps":
        return _cmd_apps()
    if args.command == "experiments":
        from repro.bench.experiments import main as experiments_main

        argv_exp = ["experiments", str(args.scale)]
        if args.json_out:
            argv_exp += ["--json-out", args.json_out]
        if args.workers != 1:
            argv_exp += ["--workers", str(args.workers)]
        if args.cache_dir:
            argv_exp += ["--cache-dir", args.cache_dir]
        return experiments_main(argv_exp)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
