"""Fault injection at the network boundary.

:class:`FaultyNetwork` decorates the ``send`` method of an already-built
:class:`~repro.machine.interconnect.Network` *in place*: the Ethernet and
SCI models (and any other subclass) inherit injection without modification,
`isinstance` checks and the transaction APIs keep working, and detaching
restores the original method. The wrapper sits *below* the active-message
layer, so retransmissions pass through it again and can be re-dropped —
exactly like a real lossy wire.

Every probabilistic decision comes from PRNG streams derived from the
plan's seed and is consumed in deterministic event order, so a seeded run
is exactly repeatable. Two independent streams are used — one for message
classification, one for heartbeat loss — so attaching a failure detector
does not perturb which *messages* are dropped.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.machine.interconnect import Message, Network

__all__ = ["FaultyNetwork"]


class FaultyNetwork:
    """Decorator around ``network.send`` executing a :class:`FaultPlan`."""

    def __init__(self, network: Network, plan: FaultPlan) -> None:
        if getattr(network, "faults", None) is not None:
            raise ConfigurationError("network already has a fault injector")
        self.network = network
        self.engine = network.engine
        self.plan = plan
        self._rng_msg = random.Random(f"{plan.seed}/msg")
        self._rng_hb = random.Random(f"{plan.seed}/hb")
        self._inner_send = network.send
        self._down_traced: set = set()  # crash/restart events already traced
        # ---------------------------------------------------- statistics
        self.dropped = 0
        self.duplicated = 0
        self.delayed = 0
        self.dropped_node_down = 0
        self.dropped_partition = 0
        self.heartbeats_lost = 0
        network.send = self._send  # type: ignore[method-assign]
        network.faults = self  # type: ignore[attr-defined]

    def detach(self) -> None:
        """Restore the undecorated ``send`` (used by tests)."""
        self.network.send = self._inner_send  # type: ignore[method-assign]
        self.network.faults = None  # type: ignore[attr-defined]

    # ------------------------------------------------------------ injection
    def _trace_down(self, node: int, now: float) -> None:
        """Emit the crash (and restart bound) once per crash window."""
        for c in self.plan.crashes:
            if c.node == node and c.down(now) and (node, c.at) not in self._down_traced:
                self._down_traced.add((node, c.at))
                self.engine.trace.emit("fault.crash", node=node, at=c.at,
                                       restart=c.restart)

    def _send(self, msg: Message) -> None:
        self.network.assign_id(msg)
        now = self.engine.now
        plan = self.plan
        trace = self.engine.trace
        for endpoint in (msg.src, msg.dst):
            if plan.node_down(endpoint, now):
                self.dropped_node_down += 1
                self._trace_down(endpoint, now)
                trace.emit("fault.drop", reason="node-down", node=endpoint,
                           src=msg.src, dst=msg.dst, msg_kind=msg.kind,
                           msg_id=msg.msg_id)
                return
        if plan.partitioned(msg.src, msg.dst, now):
            self.dropped_partition += 1
            trace.emit("fault.drop", reason="partition", src=msg.src,
                       dst=msg.dst, msg_kind=msg.kind, msg_id=msg.msg_id)
            return
        link = plan.link
        rng = self._rng_msg
        if link.drop_rate > 0 and rng.random() < link.drop_rate:
            self.dropped += 1
            trace.emit("fault.drop", reason="loss", src=msg.src, dst=msg.dst,
                       msg_kind=msg.kind, msg_id=msg.msg_id)
            return
        delay = 0.0
        if link.delay_rate > 0 and rng.random() < link.delay_rate:
            delay = rng.uniform(link.delay_min, link.delay_max)
            if delay > 0:
                self.delayed += 1
                trace.emit("fault.delay", extra=delay, src=msg.src,
                           dst=msg.dst, msg_kind=msg.kind, msg_id=msg.msg_id)
        duplicate = link.dup_rate > 0 and rng.random() < link.dup_rate
        if delay > 0:
            self.engine.schedule(delay, lambda m=msg: self._inner_send(m))
        else:
            self._inner_send(msg)
        if duplicate:
            self.duplicated += 1
            trace.emit("fault.dup", src=msg.src, dst=msg.dst,
                       msg_kind=msg.kind, msg_id=msg.msg_id)
            # The copy shares the original's msg_id (it is the same packet
            # on the wire twice); receiver-side dedup suppresses it.
            copy = dataclasses.replace(msg)
            self.engine.schedule(delay + max(self.network.latency, 1e-6),
                                 lambda m=copy: self._inner_send(m))

    # ----------------------------------------------------------- heartbeats
    def heartbeat_lost(self, node: int, monitor: int, now: float) -> bool:
        """Whether a heartbeat from ``node`` to ``monitor`` is lost now.

        Uses a dedicated PRNG stream so detector traffic never perturbs the
        message-fault schedule.
        """
        plan = self.plan
        if plan.node_down(node, now) or plan.node_down(monitor, now):
            self._trace_down(node, now)
            self.heartbeats_lost += 1
            return True
        if plan.partitioned(node, monitor, now):
            self.heartbeats_lost += 1
            return True
        rate = plan.link.drop_rate
        if rate > 0 and self._rng_hb.random() < rate:
            self.heartbeats_lost += 1
            return True
        return False

    # ------------------------------------------------------------- queries
    def node_down(self, node: int, now: Optional[float] = None) -> bool:
        return self.plan.node_down(node, self.engine.now if now is None else now)

    def stats(self) -> dict:
        return {"dropped": self.dropped,
                "duplicated": self.duplicated,
                "delayed": self.delayed,
                "dropped_node_down": self.dropped_node_down,
                "dropped_partition": self.dropped_partition,
                "heartbeats_lost": self.heartbeats_lost}
