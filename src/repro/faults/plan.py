"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *what can go wrong* during one simulated run:

* :class:`LinkFaults` — per-message probabilities for dropping, duplicating,
  and delaying traffic on every link;
* :class:`Partition` — a virtual-time window during which listed node
  groups cannot exchange messages (nodes not named form one implicit
  extra group);
* :class:`NodeCrash` — a node goes silent at ``at`` and (optionally)
  returns at ``restart``.

The plan itself is pure data: frozen, hashable, JSON-round-trippable.
Randomness enters only through ``seed`` — the injection layer
(:class:`repro.faults.inject.FaultyNetwork`) derives its PRNG streams from
it and consumes draws in deterministic event order, so the same plan on the
same workload produces the same faults, message ids, and event trace every
time.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["LinkFaults", "Partition", "NodeCrash", "FaultPlan"]


def _check_rate(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-message fault probabilities applied to every link."""

    #: probability a message silently vanishes on the wire
    drop_rate: float = 0.0
    #: probability a message is delivered twice (same ``msg_id``)
    dup_rate: float = 0.0
    #: probability a message is held back by an extra random delay
    delay_rate: float = 0.0
    #: extra-delay bounds in virtual seconds (uniform draw); enough jitter
    #: relative to the wire latency reorders messages on the same link
    delay_min: float = 0.0
    delay_max: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("dup_rate", self.dup_rate)
        _check_rate("delay_rate", self.delay_rate)
        if self.delay_min < 0 or self.delay_max < self.delay_min:
            raise ConfigurationError(
                f"need 0 <= delay_min <= delay_max, got "
                f"[{self.delay_min}, {self.delay_max}]")

    @property
    def active(self) -> bool:
        return (self.drop_rate > 0 or self.dup_rate > 0
                or self.delay_rate > 0)


@dataclass(frozen=True)
class Partition:
    """Transient network partition over ``[start, end)``.

    ``groups`` are disjoint node sets; messages between different groups
    (or between a listed group and unlisted nodes) are dropped while the
    window is open. Traffic *within* a group still flows.
    """

    start: float
    end: float
    groups: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"partition window [{self.start}, {self.end}) is empty")
        seen: set = set()
        norm = tuple(tuple(sorted(g)) for g in self.groups)
        for g in norm:
            if seen & set(g):
                raise ConfigurationError("partition groups must be disjoint")
            seen |= set(g)
        object.__setattr__(self, "groups", norm)

    def _group_of(self, node: int) -> int:
        for i, g in enumerate(self.groups):
            if node in g:
                return i
        return -1  # implicit group of unlisted nodes

    def separates(self, src: int, dst: int, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return self._group_of(src) != self._group_of(dst)


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` is down over ``[at, restart)`` (forever if ``restart``
    is ``None``): it neither sends nor receives any message."""

    node: int
    at: float
    restart: Optional[float] = None

    def __post_init__(self) -> None:
        if self.restart is not None and self.restart <= self.at:
            raise ConfigurationError(
                f"node {self.node}: restart ({self.restart}) must come "
                f"after the crash ({self.at})")

    def down(self, now: float) -> bool:
        return self.at <= now and (self.restart is None or now < self.restart)


@dataclass(frozen=True)
class FaultPlan:
    """One seeded schedule of faults for one simulated run."""

    seed: int = 0
    link: LinkFaults = field(default_factory=LinkFaults)
    partitions: Tuple[Partition, ...] = ()
    crashes: Tuple[NodeCrash, ...] = ()
    #: start the heartbeat failure detector when the platform is built
    heartbeat: bool = True
    #: heartbeat period in virtual seconds
    heartbeat_interval: float = 2e-3

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "crashes", tuple(self.crashes))

    # ------------------------------------------------------------- queries
    def node_down(self, node: int, now: float) -> bool:
        return any(c.node == node and c.down(now) for c in self.crashes)

    def partitioned(self, src: int, dst: int, now: float) -> bool:
        return any(p.separates(src, dst, now) for p in self.partitions)

    def has_permanent_crash(self) -> bool:
        return any(c.restart is None for c in self.crashes)

    @property
    def active(self) -> bool:
        """Whether this plan can affect any message at all."""
        return bool(self.link.active or self.partitions or self.crashes)

    # -------------------------------------------------------- construction
    @classmethod
    def seeded(cls, seed: int, drop_rate: float = 0.10, dup_rate: float = 0.03,
               delay_rate: float = 0.10, delay_max: float = 300e-6,
               **kw: Any) -> "FaultPlan":
        """The default chaos profile: moderate loss, duplication, and jitter
        — enough to exercise every retry/dedup path while staying well
        inside what bounded retries mask."""
        return cls(seed=seed,
                   link=LinkFaults(drop_rate=drop_rate, dup_rate=dup_rate,
                                   delay_rate=delay_rate,
                                   delay_max=delay_max),
                   **kw)

    @classmethod
    def coerce(cls, value: Union["FaultPlan", int, Dict[str, Any]]) -> "FaultPlan":
        """Accept the shapes a config file or preset may carry: a plan, a
        bare seed (→ :meth:`seeded`), or a :meth:`to_dict` mapping."""
        if isinstance(value, FaultPlan):
            return value
        if isinstance(value, bool):
            raise ConfigurationError("faults must be a plan, seed, or dict")
        if isinstance(value, int):
            return cls.seeded(value)
        if isinstance(value, dict):
            return cls.from_dict(value)
        raise ConfigurationError(
            f"cannot build a FaultPlan from {type(value).__name__}")

    def with_overrides(self, **kw: Any) -> "FaultPlan":
        return replace(self, **kw)

    # ------------------------------------------------------------------ io
    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["partitions"] = [{"start": p.start, "end": p.end,
                            "groups": [list(g) for g in p.groups]}
                           for p in self.partitions]
        d["crashes"] = [asdict(c) for c in self.crashes]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        known = {"seed", "link", "partitions", "crashes", "heartbeat",
                 "heartbeat_interval"}
        unknown = set(d) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault-plan keys {sorted(unknown)}")
        link = d.get("link", {})
        if isinstance(link, dict):
            link = LinkFaults(**link)
        partitions = tuple(
            p if isinstance(p, Partition) else Partition(
                start=p["start"], end=p["end"],
                groups=tuple(tuple(g) for g in p["groups"]))
            for p in d.get("partitions", ()))
        crashes = tuple(
            c if isinstance(c, NodeCrash) else NodeCrash(**c)
            for c in d.get("crashes", ()))
        return cls(seed=int(d.get("seed", 0)), link=link,
                   partitions=partitions, crashes=crashes,
                   heartbeat=bool(d.get("heartbeat", True)),
                   heartbeat_interval=float(d.get("heartbeat_interval", 2e-3)))

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid fault-plan JSON: {exc}") from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return cls.loads(fh.read())
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan: {exc}") from None
