"""Chaos harness: Table 1 benchmarks under seeded fault plans.

:func:`run_chaos` builds a platform with a :class:`~repro.faults.plan.FaultPlan`
installed, runs one benchmark SPMD-style, and reports a **typed** outcome:

* ``"completed"`` — the run finished; with transient faults the reliable
  messaging layer masked them and verification still holds;
* ``"node-failed"`` — a :class:`~repro.errors.NodeFailedError` surfaced
  (heartbeat-confirmed crash, or a send to a known-dead node);
* ``"timeout"`` — a :class:`~repro.errors.TimeoutError` surfaced (a message
  exhausted its retransmission budget, e.g. under a long partition).

The invariant the chaos tests assert: a faulty run either completes with a
*verified* result or fails with one of these typed errors — never a silent
wrong answer, never a hang. Same plan + same workload → identical outcome,
statistics, and event trace.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

from repro.config import ClusterConfig, preset
from repro.errors import NodeFailedError, TimeoutError
from repro.faults.plan import FaultPlan

__all__ = ["ChaosResult", "run_chaos", "fault_free_fingerprint"]


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    app: str
    platform: str
    #: "completed" | "node-failed" | "timeout"
    outcome: str
    verified: bool = False
    checksum: float = 0.0
    phases: Dict[str, float] = field(default_factory=dict)
    #: final virtual time of the simulation
    virtual_time: float = 0.0
    #: stringified error for the failure outcomes
    error: Optional[str] = None
    #: injection statistics (FaultyNetwork.stats()), {} when fault-free
    faults: Dict[str, int] = field(default_factory=dict)
    #: reliable-messaging statistics
    messaging: Dict[str, int] = field(default_factory=dict)
    #: failure-detector status, {} when no detector ran
    detector: Dict[str, Any] = field(default_factory=dict)
    #: the :class:`~repro.config.BuiltPlatform` the run executed on — the
    #: handle observability exports (trace/metrics) read from
    built: Any = None

    @property
    def masked(self) -> bool:
        """Whether faults were injected yet the run still completed verified."""
        injected = sum(v for k, v in self.faults.items()
                       if k != "heartbeats_lost")
        return self.outcome == "completed" and self.verified and injected > 0

    def summary(self) -> str:
        lines = [f"chaos: {self.app} on {self.platform}",
                 f"outcome  : {self.outcome}"
                 + (f" ({self.error})" if self.error else ""),
                 f"verified : {self.verified}",
                 f"virtual  : {self.virtual_time * 1e3:.3f} ms"]
        if self.faults:
            inj = ", ".join(f"{k}={v}" for k, v in sorted(self.faults.items()))
            lines.append(f"injected : {inj}")
        if self.messaging:
            msg = ", ".join(f"{k}={v}" for k, v in sorted(self.messaging.items()))
            lines.append(f"messaging: {msg}")
        if self.detector:
            lines.append(f"detector : suspected={self.detector.get('suspected')} "
                         f"failed={self.detector.get('failed')}")
        return "\n".join(lines)


def _resolve_config(config: Union[str, ClusterConfig]) -> ClusterConfig:
    if isinstance(config, str):
        return preset(config)
    if isinstance(config, ClusterConfig):
        import dataclasses

        return dataclasses.replace(
            config, param_overrides=dict(config.param_overrides))
    raise TypeError(f"config must be a preset name or ClusterConfig, "
                    f"got {type(config).__name__}")


def run_chaos(config: Union[str, ClusterConfig], app: str = "sor",
              app_params: Optional[Dict[str, Any]] = None,
              plan: Optional[Union[FaultPlan, int, Dict[str, Any]]] = None,
              native: bool = False) -> ChaosResult:
    """Run one benchmark under ``plan`` and classify the outcome.

    ``plan`` overrides whatever ``config.faults`` carries; pass ``None`` to
    keep the config's own plan (or run fault-free).
    """
    from repro.apps import get_app
    from repro.apps.common import merge_rank_results
    from repro.models.jiajia_api import JiaJiaApi
    from repro.models.native_jiajia import NativeJiaJiaApi

    cfg = _resolve_config(config)
    if plan is not None:
        cfg.faults = FaultPlan.coerce(plan)
    plat = cfg.build()
    api = NativeJiaJiaApi(plat.hamster) if native else JiaJiaApi(plat.hamster)
    fn = get_app(app)
    params = dict(app_params or {})
    result = ChaosResult(app=app, platform=cfg.name or cfg.platform,
                         outcome="completed", built=plat)
    try:
        merged = merge_rank_results(api.run(functools.partial(fn, **params)))
        result.verified = merged.verified
        result.checksum = merged.checksum
        result.phases = dict(merged.phases)
    except NodeFailedError as exc:
        result.outcome = "node-failed"
        result.error = str(exc)
    except TimeoutError as exc:
        result.outcome = "timeout"
        result.error = str(exc)
    result.virtual_time = plat.engine.now
    if plat.faults is not None:
        result.faults = plat.faults.stats()
    layer = plat.fabric.layer if plat.fabric is not None else None
    if layer is not None and layer.reliable:
        result.messaging = {"posts": layer.posts, "rpcs": layer.rpcs,
                            "retries": layer.retries,
                            "acks_sent": layer.acks_sent,
                            "dups_suppressed": layer.dups_suppressed,
                            "delivery_failures": layer.delivery_failures}
    detector = plat.hamster.cluster_ctl.detector
    if detector is not None:
        detector.stop()
        result.detector = detector.status()
    return result


def fault_free_fingerprint(config: Union[str, ClusterConfig],
                           app: str = "sor",
                           app_params: Optional[Dict[str, Any]] = None,
                           native: bool = False) -> Dict[str, Any]:
    """Reference run with no faults: the (checksum, virtual-time, verified)
    triple a masked chaos run's *correctness* is compared against."""
    cfg = _resolve_config(config)
    cfg.faults = None
    res = run_chaos(cfg, app=app, app_params=app_params, native=native)
    return {"checksum": res.checksum, "virtual_time": res.virtual_time,
            "verified": res.verified}
