"""Deterministic fault injection for the simulated cluster (S17).

The paper's evaluation assumes a healthy cluster; this subsystem makes the
*unhealthy* cases reachable — and reproducible. Three pieces:

* :mod:`repro.faults.plan` — a :class:`FaultPlan` is a seeded, declarative
  specification of fault events: per-message link faults (drop / duplicate /
  delay), transient partitions, and node crashes with optional restart.
  Pure data; serializable; composes with any cluster preset via the
  ``faults=`` field of :class:`repro.config.ClusterConfig`.
* :mod:`repro.faults.inject` — :class:`FaultyNetwork` decorates a built
  network's ``send`` method, so the Ethernet and SCI interconnect models
  (and any future :class:`~repro.machine.interconnect.Network` subclass)
  inherit injection without modification. All random decisions come from
  the plan's seed, drawn in deterministic event order.
* :mod:`repro.faults.chaos` — a harness that runs a Table 1 benchmark under
  a fault plan and reports a typed outcome (completed / node-failed /
  timeout) plus fault, retry, and detector statistics.

Reliability mechanisms that *mask* injected faults live with the layers
they harden: acknowledged/retried messaging in
:mod:`repro.msg.active_messages`, heartbeat failure detection in
:mod:`repro.core.cluster_ctrl`. With no plan configured none of this is
active and the simulator behaves bit-identically to the fault-free system.
"""

from repro.faults.chaos import ChaosResult, fault_free_fingerprint, run_chaos
from repro.faults.inject import FaultyNetwork
from repro.faults.plan import FaultPlan, LinkFaults, NodeCrash, Partition

__all__ = ["FaultPlan", "LinkFaults", "NodeCrash", "Partition",
           "FaultyNetwork", "ChaosResult", "run_chaos",
           "fault_free_fingerprint"]
