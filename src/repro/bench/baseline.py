"""Baseline store and regression gates over benchmark telemetry.

A *baseline* is simply a committed telemetry document
(``benchmarks/baselines/<suite>.json``, the schema of
:mod:`repro.bench.telemetry`). :func:`compare_docs` matches a fresh run
against it record by record and hands down one verdict per (record,
metric):

``improve`` / ``ok`` / ``regress``
    the metric moved past / stayed within / crossed the threshold in the
    wrong direction. Virtual-time metrics are **deterministic** in this
    simulator, so their thresholds are tight and a regress is *hard*
    (non-zero exit). Host-time metrics vary with the machine, so their
    thresholds are wide, widened further by the MAD of the recorded
    repeats, and a regress is *soft* (CI annotation only).

``new-benchmark`` / ``missing-baseline``
    a record the baseline has never seen, and a baseline record the
    current run did not produce. Both are informational — the cure is
    ``bench update-baseline``.

``fingerprint-mismatch``
    the config fingerprints differ: the two records did not run the same
    experiment, so metric deltas would be meaningless. Hard, because it
    means the committed baseline is stale with respect to the code.

The **paper-shape gate** (:func:`shape_gate`) re-asserts the qualitative
structure of the paper's Figures 2-4 from *recorded* numbers — the same
derivations the live benchmarks use (:func:`repro.bench.runners
.overhead_pct` and friends), applied to the telemetry's per-label virtual
seconds. A telemetry document that passes the gate reproduces the paper's
claims by construction, whatever machine recorded it.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.runners import advantage_pct, normalized_pct, overhead_pct

__all__ = ["MetricVerdict", "CompareResult", "METRICS", "HARD_METRICS",
           "DEFAULT_THRESHOLDS_PCT", "compare_docs", "shape_gate",
           "ShapeCheck"]

#: metric name -> (lower_is_better, hard)
METRICS: Dict[str, Tuple[bool, bool]] = {
    "virtual_seconds": (True, True),
    "events_executed": (True, True),
    "host_seconds": (True, False),
    "events_per_sec": (False, False),
}

HARD_METRICS = tuple(m for m, (_low, hard) in METRICS.items() if hard)

#: Relative thresholds (percent). Virtual metrics are deterministic — any
#: drift beyond float formatting is a real change; host metrics swing with
#: CPU frequency scaling and CI neighbors.
DEFAULT_THRESHOLDS_PCT: Dict[str, float] = {
    "virtual_seconds": 0.1,
    "events_executed": 0.1,
    "host_seconds": 30.0,
    "events_per_sec": 30.0,
}


# ---------------------------------------------------------------- verdicts
@dataclass
class MetricVerdict:
    """One (record, metric) comparison outcome."""

    record_id: str
    metric: str
    verdict: str                 # improve | ok | regress | new-benchmark |
    #                            # missing-baseline | fingerprint-mismatch
    current: Optional[float] = None
    baseline: Optional[float] = None
    delta_pct: Optional[float] = None
    threshold_pct: Optional[float] = None
    hard: bool = False

    def as_row(self) -> List[Any]:
        fmt = (lambda v: "-" if v is None else f"{v:.6g}")
        return [self.record_id, self.metric, self.verdict,
                fmt(self.current), fmt(self.baseline),
                "-" if self.delta_pct is None else f"{self.delta_pct:+.2f}%",
                "hard" if self.hard else "soft"]


@dataclass
class CompareResult:
    """All verdicts of one current-vs-baseline comparison."""

    suite: str
    verdicts: List[MetricVerdict] = field(default_factory=list)
    shape_violations: List[str] = field(default_factory=list)

    def by_verdict(self, verdict: str) -> List[MetricVerdict]:
        return [v for v in self.verdicts if v.verdict == verdict]

    def hard_regressions(self) -> List[MetricVerdict]:
        return [v for v in self.verdicts
                if v.hard and v.verdict in ("regress", "fingerprint-mismatch")]

    def exit_code(self) -> int:
        """0 = clean/soft-only, 1 = hard regression or shape violation."""
        return 1 if (self.hard_regressions() or self.shape_violations) else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for v in self.verdicts:
            out[v.verdict] = out.get(v.verdict, 0) + 1
        return out

    def render(self, show_ok: bool = False) -> str:
        from repro.bench.report import render_table

        rows = [v.as_row() for v in self.verdicts
                if show_ok or v.verdict != "ok"]
        lines = []
        if rows:
            lines.append(render_table(
                ["benchmark", "metric", "verdict", "current", "baseline",
                 "delta", "gate"],
                rows, title=f"bench compare: suite {self.suite!r}"))
        counts = ", ".join(f"{k}={v}" for k, v in sorted(self.counts().items()))
        lines.append(f"verdicts: {counts or 'none'}")
        for violation in self.shape_violations:
            lines.append(f"paper-shape VIOLATION: {violation}")
        if not self.shape_violations:
            lines.append("paper-shape gate: ok")
        lines.append("result: " + ("HARD REGRESSION"
                                   if self.exit_code() else "ok"))
        return "\n".join(lines)


# ----------------------------------------------------------------- compare
def _mad_pct(samples: List[float]) -> float:
    """Median absolute deviation as a percent of the median (noise width
    of the recorded repeats); 0 when fewer than 3 samples."""
    if len(samples) < 3:
        return 0.0
    med = statistics.median(samples)
    if med <= 0:
        return 0.0
    mad = statistics.median(abs(s - med) for s in samples)
    return 100.0 * mad / med


def _judge(metric: str, current: float, baseline: float,
           threshold_pct: float, lower_is_better: bool) -> Tuple[str, float]:
    """Verdict + signed delta percent for one metric pair."""
    if baseline == 0:
        return ("ok" if current == 0 else "regress"
                if lower_is_better else "improve"), 0.0
    delta_pct = 100.0 * (current - baseline) / baseline
    worse = delta_pct > threshold_pct if lower_is_better \
        else delta_pct < -threshold_pct
    better = delta_pct < -threshold_pct if lower_is_better \
        else delta_pct > threshold_pct
    if worse:
        return "regress", delta_pct
    if better:
        return "improve", delta_pct
    return "ok", delta_pct


def compare_docs(current: Dict[str, Any], baseline: Dict[str, Any],
                 thresholds_pct: Optional[Dict[str, float]] = None,
                 mad_factor: float = 3.0,
                 shape: bool = True) -> CompareResult:
    """Compare a fresh telemetry document against a baseline document.

    ``thresholds_pct`` overrides :data:`DEFAULT_THRESHOLDS_PCT` per metric.
    Host-metric thresholds are widened to ``mad_factor`` times the repeat
    noise (MAD as % of median) when the current record carries >= 3
    repeats. When ``shape`` is true the paper-shape gate runs over the
    *current* document and its violations count as hard.
    """
    thresholds = dict(DEFAULT_THRESHOLDS_PCT)
    thresholds.update(thresholds_pct or {})
    result = CompareResult(suite=str(current.get("suite", "?")))

    base_by_id = {rec["id"]: rec for rec in baseline.get("records", [])}
    cur_by_id = {rec["id"]: rec for rec in current.get("records", [])}

    for rec_id, rec in cur_by_id.items():
        base = base_by_id.get(rec_id)
        if base is None:
            result.verdicts.append(MetricVerdict(
                record_id=rec_id, metric="-", verdict="new-benchmark"))
            continue
        if rec.get("fingerprint") != base.get("fingerprint"):
            result.verdicts.append(MetricVerdict(
                record_id=rec_id, metric="fingerprint",
                verdict="fingerprint-mismatch", hard=True))
            continue
        for metric, (lower_is_better, hard) in METRICS.items():
            if metric not in rec or metric not in base:
                continue
            tol = thresholds[metric]
            if not hard:
                tol = max(tol, mad_factor * _mad_pct(
                    [float(s) for s in rec.get("host_seconds_all", [])]))
            verdict, delta = _judge(metric, float(rec[metric]),
                                    float(base[metric]), tol,
                                    lower_is_better)
            result.verdicts.append(MetricVerdict(
                record_id=rec_id, metric=metric, verdict=verdict,
                current=float(rec[metric]), baseline=float(base[metric]),
                delta_pct=delta, threshold_pct=tol, hard=hard))

    for rec_id in base_by_id:
        if rec_id not in cur_by_id:
            result.verdicts.append(MetricVerdict(
                record_id=rec_id, metric="-", verdict="missing-baseline"))

    if shape:
        result.shape_violations = [c.describe() for c in shape_gate(current)
                                   if not c.passed]
    return result


# ------------------------------------------------------------- shape gate
@dataclass
class ShapeCheck:
    """One figure-shape assertion evaluated over recorded numbers."""

    figure: str
    claim: str
    passed: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.passed else "FAIL"
        text = f"[{self.figure}] {self.claim}: {status}"
        return f"{text} ({self.detail})" if self.detail else text


def _label_seconds(doc: Dict[str, Any], preset: str) -> Dict[str, float]:
    """label -> virtual seconds for one preset, from recorded telemetry."""
    out: Dict[str, float] = {}
    for rec in doc.get("records", []):
        if rec.get("preset") == preset:
            for label, seconds in rec.get("label_seconds", {}).items():
                out[label] = float(seconds)
    return out


def shape_gate(doc: Dict[str, Any],
               fig2_band_pct: float = 10.0) -> List[ShapeCheck]:
    """Re-assert the Figure 2-4 qualitative orderings from recorded data.

    Checks are per-figure and skip silently when the document does not
    contain the platforms a figure needs (a filtered ``--only`` run
    should not fail the gate on absence). Bounds are loose enough for
    smoke scale yet tight enough to catch an inverted ordering:

    * Fig. 2 — HAMSTER-vs-native overhead within ``±fig2_band_pct`` for
      every benchmark (the paper's full-scale band is −4.5%…+6.5%);
    * Fig. 3 — the hybrid DSM beats the SW-DSM on every benchmark;
    * Fig. 4 — the SW-DSM is never faster than the hybrid DSM, and
      memory-bound MatMult beats the SMP on the hybrid (the paper's
      crossover), while the SMP wins most other benchmarks on SW-DSM.
    """
    checks: List[ShapeCheck] = []

    # Figure 2: sw-dsm-4 vs native-jiajia-4.
    t_ham = _label_seconds(doc, "sw-dsm-4")
    t_nat = _label_seconds(doc, "native-jiajia-4")
    if t_ham and t_nat:
        overhead = overhead_pct(t_ham, t_nat)
        offenders = {k: round(v, 2) for k, v in overhead.items()
                     if abs(v) > fig2_band_pct}
        checks.append(ShapeCheck(
            "fig2", f"|HAMSTER overhead| <= {fig2_band_pct:g}%",
            passed=not offenders,
            detail=f"outside band: {offenders}" if offenders else
                   f"range {min(overhead.values()):+.2f}%"
                   f"..{max(overhead.values()):+.2f}%"))

    # Figure 3: hybrid-4 vs sw-dsm-4.
    t_sw4 = _label_seconds(doc, "sw-dsm-4")
    t_hy4 = _label_seconds(doc, "hybrid-4")
    if t_sw4 and t_hy4:
        adv = advantage_pct(t_sw4, t_hy4)
        losers = {k: round(v, 2) for k, v in adv.items() if v <= 0}
        checks.append(ShapeCheck(
            "fig3", "hybrid DSM faster than SW-DSM on every benchmark",
            passed=not losers,
            detail=f"hybrid loses: {losers}" if losers else
                   f"advantage {min(adv.values()):.1f}%"
                   f"..{max(adv.values()):.1f}%"))

    # Figure 4: smp-2 vs hybrid-2 vs sw-dsm-2.
    t_hw = _label_seconds(doc, "smp-2")
    t_hy2 = _label_seconds(doc, "hybrid-2")
    t_sw2 = _label_seconds(doc, "sw-dsm-2")
    if t_hw and t_hy2 and t_sw2:
        norm = normalized_pct(t_hw, t_hy2, t_sw2)
        inversions = {k: (round(v["hybrid"], 1), round(v["software"], 1))
                      for k, v in norm.items()
                      if v["software"] < v["hybrid"]}
        checks.append(ShapeCheck(
            "fig4", "SW-DSM never faster than the hybrid DSM",
            passed=not inversions,
            detail=f"inversions: {inversions}" if inversions else
                   f"{len(norm)} benchmarks ordered"))
        if "MatMult" in norm:
            checks.append(ShapeCheck(
                "fig4", "memory-bound MatMult beats the SMP on the hybrid",
                passed=norm["MatMult"]["hybrid"] < 100.0,
                detail=f"hybrid at {norm['MatMult']['hybrid']:.1f}% of SMP"))
        others = [v for k, v in norm.items() if k != "MatMult"]
        if len(others) >= 3:
            smp_wins = sum(1 for v in others if v["software"] > 100.0)
            checks.append(ShapeCheck(
                "fig4", "SMP wins most benchmarks against the SW-DSM",
                passed=smp_wins * 2 > len(others),
                detail=f"SMP wins {smp_wins}/{len(others)}"))
    return checks
