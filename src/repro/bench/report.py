"""Fixed-width rendering of experiment rows.

Used by the pytest benches (printed under ``-s`` / captured into the bench
logs) and by the EXPERIMENTS.md generator, so the repository's recorded
results and the benches' live output come from one formatter.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

__all__ = ["render_table", "render_bars"]

Cell = Union[str, int, float]


def _fmt(value: Cell, width: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.2f}"
    return f"{value!s:>{width}}" if isinstance(value, int) else f"{value!s:<{width}}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: str = "") -> str:
    """Monospace table with a rule under the header."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            text = f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            widths[i] = max(widths[i], len(text))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{h:<{w}}" for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(values: Dict[str, float], unit: str = "%",
                width: int = 40, title: str = "") -> str:
    """ASCII bar chart for figure-style data (negative bars point left)."""
    if not values:
        return title
    peak = max(abs(v) for v in values.values()) or 1.0
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar_len = int(round(abs(value) / peak * (width // 2)))
        if value >= 0:
            bar = " " * (width // 2) + "#" * bar_len
        else:
            bar = " " * (width // 2 - bar_len) + "#" * bar_len
        lines.append(f"{label:>10s} |{bar:<{width}}| {value:+8.2f}{unit}")
    return "\n".join(lines)
