"""Rendering of experiment rows and telemetry reports.

Used by the pytest benches (printed under ``-s`` / captured into the bench
logs) and by the EXPERIMENTS.md generator, so the repository's recorded
results and the benches' live output come from one formatter. The
``telemetry_*`` family turns a :mod:`repro.bench.telemetry` document (plus
optional compare verdicts and metrics-sampler data) into the markdown/HTML
artifact ``python -m repro bench report`` publishes.
"""

from __future__ import annotations

import html as _html
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = ["render_table", "render_bars", "telemetry_markdown",
           "telemetry_html"]

Cell = Union[str, int, float]


def _fmt(value: Cell, width: int) -> str:
    if isinstance(value, float):
        return f"{value:>{width}.2f}"
    return f"{value!s:>{width}}" if isinstance(value, int) else f"{value!s:<{width}}"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]],
                 title: str = "") -> str:
    """Monospace table with a rule under the header."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            text = f"{cell:.2f}" if isinstance(cell, float) else str(cell)
            widths[i] = max(widths[i], len(text))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(f"{h:<{w}}" for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(c, w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(values: Dict[str, float], unit: str = "%",
                width: int = 40, title: str = "") -> str:
    """ASCII bar chart for figure-style data (negative bars point left)."""
    if not values:
        return title
    peak = max(abs(v) for v in values.values()) or 1.0
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar_len = int(round(abs(value) / peak * (width // 2)))
        if value >= 0:
            bar = " " * (width // 2) + "#" * bar_len
        else:
            bar = " " * (width // 2 - bar_len) + "#" * bar_len
        lines.append(f"{label:>10s} |{bar:<{width}}| {value:+8.2f}{unit}")
    return "\n".join(lines)


# ------------------------------------------------------- telemetry reports
def _telemetry_sections(doc: Dict[str, Any], compare=None,
                        metrics: Optional[List[Dict[str, Any]]] = None,
                        metrics_top: int = 15):
    """(title, headers, rows) sections shared by the md and html writers."""
    sections = []
    rec_rows = []
    for rec in doc.get("records", []):
        cp = rec.get("critical_path", {})
        cp_total = sum(cp.values()) or 1.0
        rec_rows.append([
            rec["id"], f"{rec['virtual_seconds'] * 1e3:.3f}",
            rec["events_executed"], f"{rec['events_per_sec']:,.0f}",
            f"{rec['host_seconds'] * 1e3:.1f}",
            f"{100.0 * cp.get('compute', 0.0) / cp_total:.0f}%",
            f"{100.0 * cp.get('protocol', 0.0) / cp_total:.0f}%",
            f"{100.0 * cp.get('wire', 0.0) / cp_total:.0f}%",
            f"{100.0 * cp.get('blocked', 0.0) / cp_total:.0f}%",
        ])
    sections.append((
        f"Telemetry — suite {doc.get('suite')!r} "
        f"(scale {doc.get('scale')}, repeat {doc.get('repeat', 1)})",
        ["benchmark", "virtual ms", "events", "events/s", "host ms",
         "compute", "protocol", "wire", "blocked"],
        rec_rows))
    if compare is not None:
        sections.append((
            "Baseline comparison",
            ["benchmark", "metric", "verdict", "current", "baseline",
             "delta", "gate"],
            [v.as_row() for v in compare.verdicts]))
        shape_rows = ([[violation] for violation in compare.shape_violations]
                      or [["all figure orderings hold"]])
        sections.append(("Paper-shape gate", ["finding"], shape_rows))
    if metrics:
        last = metrics[-1].get("values", {})
        peaks: Dict[str, float] = {}
        for point in metrics:
            for key, value in point.get("values", {}).items():
                peaks[key] = max(peaks.get(key, float("-inf")), float(value))
        keys = sorted(last, key=lambda k: -abs(last[k]))[:metrics_top]
        sections.append((
            f"Sampled metrics ({len(metrics)} samples; top {len(keys)} "
            "keys by final value)",
            ["metric", "final", "peak"],
            [[k, f"{last[k]:g}", f"{peaks[k]:g}"] for k in keys]))
    return sections


def telemetry_markdown(doc: Dict[str, Any], compare=None,
                       metrics: Optional[List[Dict[str, Any]]] = None) -> str:
    """Render a telemetry document (and optional compare result /
    metrics-sampler samples) as a markdown report."""
    lines: List[str] = ["# Benchmark telemetry report", ""]
    host = doc.get("host", {})
    if host:
        lines += [f"*Host: python {host.get('python', '?')} on "
                  f"{host.get('system', '?')}/{host.get('machine', '?')}*", ""]
    for title, headers, rows in _telemetry_sections(doc, compare, metrics):
        lines += [f"## {title}", ""]
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for row in rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        lines.append("")
    return "\n".join(lines)


def telemetry_html(doc: Dict[str, Any], compare=None,
                   metrics: Optional[List[Dict[str, Any]]] = None) -> str:
    """Self-contained HTML version of :func:`telemetry_markdown`."""
    parts: List[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>Benchmark telemetry report</title>",
        "<style>body{font-family:sans-serif;margin:2em}"
        "table{border-collapse:collapse;margin:1em 0}"
        "td,th{border:1px solid #999;padding:4px 8px;text-align:right}"
        "th{background:#eee}td:first-child,th:first-child{text-align:left}"
        ".regress{background:#fdd}.improve{background:#dfd}</style>",
        "</head><body><h1>Benchmark telemetry report</h1>"]
    host = doc.get("host", {})
    if host:
        parts.append(f"<p><em>Host: python "
                     f"{_html.escape(str(host.get('python', '?')))} on "
                     f"{_html.escape(str(host.get('system', '?')))}/"
                     f"{_html.escape(str(host.get('machine', '?')))}"
                     f"</em></p>")
    for title, headers, rows in _telemetry_sections(doc, compare, metrics):
        parts.append(f"<h2>{_html.escape(title)}</h2><table><tr>"
                     + "".join(f"<th>{_html.escape(h)}</th>" for h in headers)
                     + "</tr>")
        for row in rows:
            cells = [str(c) for c in row]
            css = (" class='regress'" if "regress" in cells
                   or "fingerprint-mismatch" in cells
                   else " class='improve'" if "improve" in cells else "")
            parts.append(f"<tr{css}>" + "".join(
                f"<td>{_html.escape(c)}</td>" for c in cells) + "</tr>")
        parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts)
