"""Differential golden-run harness for the simulator hot path.

The engine overhaul (calendar queue, direct-handoff dispatcher, span
coalescing, cost memoization) is a pure *host-side* optimization: every
virtual-time observable must stay bit-identical. This module pins that
contract down with golden snapshots:

* **record** — run every Fig 2-4 configuration (the six figure presets x
  the seven primary workload labels, at smoke scale) plus a set of seeded
  chaos scenarios, and store ``{virtual_seconds, events_executed, trace
  digest, ...}`` per scenario in ``tests/golden/golden_runs.json``. The
  committed goldens were recorded from the **pre-overhaul** engine (heapq
  queue, Event-pair handoff), so every later engine change is compared
  against the original semantics, not against itself.
* **check** — re-run every scenario and compare the full record against
  the golden **exactly** (floats and digests included; this is a hard
  gate, not a tolerance gate).
* **dual** — run every scenario twice, once with the heapq reference
  queue and once with the calendar queue (``REPRO_ENGINE_QUEUE``), and
  assert the two produce identical records — the differential check that
  needs no stored state.
* **dual-procs** — the same differential shape over the *process*
  backends (``REPRO_ENGINE_PROCS``): thread-backed reference processes vs
  the generator (continuation) scheduler. Any divergence is a missed or
  misordered yield point in a ``*_g`` kernel.

The trace digest hashes the engine's structured trace stream (kind,
timestamp, sorted fields). Process ids embedded in ``name#pid`` strings
come from a global interpreter-wide counter, so digests normalize every
``#N`` token to its first-appearance index — two runs hash equal iff
their event streams are identical modulo that consistent renumbering.

Run as a module::

    PYTHONPATH=src python -m repro.bench.diffcheck --check
    PYTHONPATH=src python -m repro.bench.diffcheck --dual --only chaos
    PYTHONPATH=src python -m repro.bench.diffcheck --dual-procs --only PI
    PYTHONPATH=src python -m repro.bench.diffcheck --record   # re-baseline

Re-record only when a change *intends* to alter virtual-time behaviour
(a cost-model change, a protocol fix); see docs/performance.md.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.bench.runners import WORKLOADS, run_app_detailed
from repro.config import preset
from repro.faults import FaultPlan, NodeCrash
from repro.faults.chaos import run_chaos

__all__ = ["SCHEMA", "DIFF_SCALE", "GOLDEN_PATH", "FigureScenario",
           "ChaosScenario", "scenarios", "scenario_ids", "stream_digest",
           "capture", "record_goldens", "load_goldens", "check_scenario",
           "check_goldens", "dual_run", "dual_procs_run",
           "events_per_sec_gate"]

SCHEMA = "repro.bench.diffcheck/1"

#: Working-set scale for every golden scenario (same as the smoke suite).
DIFF_SCALE = 0.05

#: Default golden store, resolved from the repo layout
#: (src/repro/bench/diffcheck.py -> repo root); override with --golden or
#: ``REPRO_GOLDEN_PATH``.
GOLDEN_PATH = Path(__file__).resolve().parents[3] / "tests" / "golden" / "golden_runs.json"

#: The six figure platforms of §5 (native binding for the Figure 2
#: baseline) — identical to bench.experiments._FIGURE_PRESETS.
_FIGURE_PRESETS: Tuple[Tuple[str, bool], ...] = (
    ("sw-dsm-4", False), ("native-jiajia-4", True), ("hybrid-4", False),
    ("smp-2", False), ("hybrid-2", False), ("sw-dsm-2", False))

#: One label per distinct execution (the LU splits share "LU all").
_FIGURE_LABELS: Tuple[str, ...] = ("MatMult", "PI", "SOR opt", "SOR",
                                   "LU all", "WATER 288", "WATER 343")


@dataclass(frozen=True)
class FigureScenario:
    """One Fig 2-4 cell: a preset running one workload label."""

    preset: str
    native: bool
    label: str

    @property
    def id(self) -> str:
        return f"fig/{self.preset}/{self.label}"


@dataclass(frozen=True)
class ChaosScenario:
    """One seeded fault-plan run (PR 1 determinism, re-asserted here)."""

    name: str
    preset: str
    app: str
    params: Tuple[Tuple[str, Any], ...]
    plan: FaultPlan

    @property
    def id(self) -> str:
        return f"chaos/{self.preset}/{self.name}"


#: Chaos scenarios: two masked-fault runs (losses/dups/jitter absorbed by
#: the reliable layer, run completes verified) and the PR 1 crash plan
#: (deterministic typed node-failed outcome). Timing of every
#: retransmission lands in the trace digest.
_CHAOS_SCENARIOS: Tuple[ChaosScenario, ...] = (
    ChaosScenario("sor-seed42", "sw-dsm-2", "sor",
                  (("n", 64), ("iterations", 3)), FaultPlan.seeded(42)),
    ChaosScenario("pi-seed77", "sw-dsm-2", "pi",
                  (("intervals", 4096),), FaultPlan.seeded(77)),
    ChaosScenario("sor-crash", "sw-dsm-2", "sor",
                  (("n", 96), ("iterations", 4)),
                  FaultPlan(seed=5, crashes=(NodeCrash(node=1, at=4e-3),))),
)


def scenarios() -> List[Any]:
    """Every golden scenario, figures first, chaos last."""
    figs: List[Any] = [FigureScenario(p, native, label)
                       for p, native in _FIGURE_PRESETS
                       for label in _FIGURE_LABELS]
    return figs + list(_CHAOS_SCENARIOS)


def scenario_ids(only: Optional[str] = None) -> List[str]:
    return [s.id for s in scenarios() if only is None or only in s.id]


# ------------------------------------------------------------------ digest
_PID_RE = re.compile(r"#\d+")


def _event_line(ev: Any) -> str:
    fields = ";".join(f"{k}={ev.fields[k]!r}" for k in sorted(ev.fields))
    return f"{ev.kind}|{ev.time!r}|{fields}"


def stream_digest(events: Iterable[Any]) -> Tuple[str, int]:
    """sha256 over the trace stream, with ``#pid`` tokens renumbered to
    first-appearance order. Returns ``(hexdigest, event_count)``."""
    mapping: Dict[str, str] = {}
    h = hashlib.sha256()
    count = 0
    for ev in events:
        line = _PID_RE.sub(
            lambda m: mapping.setdefault(m.group(0), f"#{len(mapping)}"),
            _event_line(ev))
        h.update(line.encode("utf-8"))
        h.update(b"\n")
        count += 1
    return h.hexdigest(), count


# ----------------------------------------------------------------- capture
def _with_env(var: str, value: Optional[str]):
    """Context manager pinning one engine-selection env var for one run."""
    import contextlib

    @contextlib.contextmanager
    def _cm():
        if value is None:
            yield
            return
        prev = os.environ.get(var)
        os.environ[var] = value
        try:
            yield
        finally:
            if prev is None:
                os.environ.pop(var, None)
            else:
                os.environ[var] = prev
    return _cm()


def _with_queue(queue: Optional[str]):
    """Context manager pinning ``REPRO_ENGINE_QUEUE`` for one run."""
    return _with_env("REPRO_ENGINE_QUEUE", queue)


def _with_procs(procs: Optional[str]):
    """Context manager pinning ``REPRO_ENGINE_PROCS`` for one run."""
    return _with_env("REPRO_ENGINE_PROCS", procs)


def _capture_figure(sc: FigureScenario, scale: float) -> Dict[str, Any]:
    cfg = preset(sc.preset)
    cfg.trace = True
    wl = WORKLOADS[sc.label]
    merged, plat = run_app_detailed(cfg, wl.app, native=sc.native,
                                    **wl.params(scale))
    digest, n_events = stream_digest(plat.engine.trace.events)
    return {
        "kind": "figure",
        "preset": sc.preset,
        "label": sc.label,
        "native": sc.native,
        "verified": bool(merged.verified),
        "checksum": merged.checksum,
        "virtual_seconds": plat.engine.now,
        "phase_seconds": merged.phases[wl.phase],
        "events_executed": int(plat.engine.events_executed),
        "trace_events": n_events,
        "digest": digest,
    }


def _capture_chaos(sc: ChaosScenario, scale: float) -> Dict[str, Any]:
    del scale  # chaos params are absolute, not scaled
    cfg = preset(sc.preset)
    cfg.trace = True
    res = run_chaos(cfg, app=sc.app, app_params=dict(sc.params), plan=sc.plan)
    digest, n_events = stream_digest(res.built.engine.trace.events)
    return {
        "kind": "chaos",
        "preset": sc.preset,
        "app": sc.app,
        "plan": sc.plan.to_dict(),
        "outcome": res.outcome,
        "verified": bool(res.verified),
        "checksum": res.checksum,
        "virtual_seconds": res.virtual_time,
        "events_executed": int(res.built.engine.events_executed),
        "trace_events": n_events,
        "digest": digest,
        "faults": dict(res.faults),
        "messaging": dict(res.messaging),
    }


def capture(sc: Any, scale: float = DIFF_SCALE,
            queue: Optional[str] = None,
            procs: Optional[str] = None) -> Dict[str, Any]:
    """Run one scenario and return its golden record. ``queue`` pins the
    engine's event-queue implementation (``"heap"`` / ``"calendar"``);
    ``procs`` pins the process backend (``"thread"`` / ``"generator"``)."""
    with _with_queue(queue), _with_procs(procs):
        if isinstance(sc, FigureScenario):
            return _capture_figure(sc, scale)
        return _capture_chaos(sc, scale)


# ------------------------------------------------------------ record/check
def record_goldens(path: Path = GOLDEN_PATH,
                   only: Optional[str] = None,
                   progress: Optional[Any] = None) -> Dict[str, Any]:
    """Run every scenario and (re)write the golden store."""
    doc: Dict[str, Any] = {"schema": SCHEMA, "scale": DIFF_SCALE,
                           "scenarios": {}}
    if only is not None and path.exists():
        doc = load_goldens(path)  # partial re-record keeps the rest
    for sc in scenarios():
        if only is not None and only not in sc.id:
            continue
        if progress is not None:
            progress(sc.id)
        doc["scenarios"][sc.id] = capture(sc, scale=doc["scale"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return doc


def load_goldens(path: Path = GOLDEN_PATH) -> Dict[str, Any]:
    path = Path(os.environ.get("REPRO_GOLDEN_PATH", str(path)))
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"golden store {path} has schema "
                         f"{doc.get('schema')!r}, expected {SCHEMA!r}")
    return doc


def diff_records(got: Dict[str, Any],
                 want: Dict[str, Any]) -> List[str]:
    """Field-by-field **exact** comparison; returns human-readable diffs."""
    problems = []
    for key in sorted(set(got) | set(want)):
        if got.get(key) != want.get(key):
            problems.append(f"{key}: got {got.get(key)!r}, "
                            f"golden {want.get(key)!r}")
    return problems


def check_scenario(sc: Any, doc: Dict[str, Any],
                   queue: Optional[str] = None,
                   procs: Optional[str] = None) -> List[str]:
    """Re-run one scenario against the loaded golden store; returns a list
    of mismatch descriptions (empty = bit-identical)."""
    want = doc["scenarios"].get(sc.id)
    if want is None:
        return [f"{sc.id}: no golden recorded (run --record)"]
    got = capture(sc, scale=doc["scale"], queue=queue, procs=procs)
    return [f"{sc.id}: {p}" for p in diff_records(got, want)]


def check_goldens(path: Path = GOLDEN_PATH, only: Optional[str] = None,
                  queue: Optional[str] = None,
                  procs: Optional[str] = None,
                  progress: Optional[Any] = None) -> List[str]:
    """Re-run every scenario against the stored goldens. Hard gate: any
    difference — a digest bit, an event count, the last float ulp of a
    virtual timestamp — is reported."""
    doc = load_goldens(path)
    problems: List[str] = []
    for sc in scenarios():
        if only is not None and only not in sc.id:
            continue
        if progress is not None:
            progress(sc.id)
        problems.extend(check_scenario(sc, doc, queue=queue, procs=procs))
    return problems


def dual_run(only: Optional[str] = None,
             progress: Optional[Any] = None) -> List[str]:
    """Run each scenario under the heapq reference queue and the calendar
    queue; any divergence between the two is a scheduler-ordering bug."""
    problems: List[str] = []
    for sc in scenarios():
        if only is not None and only not in sc.id:
            continue
        if progress is not None:
            progress(sc.id)
        ref = capture(sc, queue="heap")
        new = capture(sc, queue="calendar")
        problems.extend(f"{sc.id} (heap vs calendar): {p}"
                        for p in diff_records(new, ref))
    return problems


def dual_procs_run(only: Optional[str] = None,
                   progress: Optional[Any] = None) -> List[str]:
    """Run each scenario under the thread-backed reference processes and
    the generator (continuation) backend; any divergence — one trace-digest
    bit, one event count — is a yield-point bug in a ``*_g`` kernel."""
    problems: List[str] = []
    for sc in scenarios():
        if only is not None and only not in sc.id:
            continue
        if progress is not None:
            progress(sc.id)
        ref = capture(sc, procs="thread")
        new = capture(sc, procs="generator")
        problems.extend(f"{sc.id} (thread vs generator): {p}"
                        for p in diff_records(new, ref))
    return problems


# ---------------------------------------------------------- events/sec gate
def events_per_sec_gate(telemetry_path: str, baseline_path: str,
                        min_ratio: Optional[float] = None) -> Tuple[str, bool]:
    """Compare per-unit events/sec of a telemetry document against the
    committed baseline. Returns ``(report text, ok)`` — ``ok`` is False
    only when ``min_ratio`` is given and the geometric-mean speedup falls
    below it. Host throughput is noisy on shared runners, so CI treats
    this as a soft gate; the ratio makes the overhaul's speedup (or a
    regression) visible in artifacts."""
    import math

    with open(telemetry_path, "r", encoding="utf-8") as fh:
        current = {r["id"]: r for r in json.load(fh)["records"]}
    with open(baseline_path, "r", encoding="utf-8") as fh:
        base = {r["id"]: r for r in json.load(fh)["records"]}
    lines = ["| unit | baseline ev/s | current ev/s | ratio |",
             "|---|---|---|---|"]
    ratios = []
    for uid in sorted(base):
        if uid not in current:
            lines.append(f"| {uid} | — | missing | — |")
            continue
        b = base[uid].get("events_per_sec", 0.0)
        c = current[uid].get("events_per_sec", 0.0)
        if b > 0 and c > 0:
            ratios.append(c / b)
            lines.append(f"| {uid} | {b:.0f} | {c:.0f} | {c / b:.2f}x |")
    geo = math.exp(sum(math.log(r) for r in ratios) / len(ratios)) if ratios else 0.0
    lines.append(f"\nevents/sec geometric-mean ratio vs baseline: "
                 f"**{geo:.2f}x** over {len(ratios)} units")
    ok = min_ratio is None or geo >= min_ratio
    if min_ratio is not None:
        lines.append(f"gate: geomean >= {min_ratio:.2f}x -> "
                     f"{'PASS' if ok else 'FAIL'}")
    return "\n".join(lines), ok


# -------------------------------------------------------------------- main
def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.diffcheck",
        description="golden-run differential harness for the engine hot path")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", action="store_true",
                      help="(re)record golden snapshots from the current engine")
    mode.add_argument("--check", action="store_true",
                      help="hard-compare current runs against the goldens")
    mode.add_argument("--dual", action="store_true",
                      help="heapq vs calendar queue differential run")
    mode.add_argument("--dual-procs", action="store_true",
                      help="thread vs generator process-backend "
                           "differential run")
    mode.add_argument("--events-gate", metavar="TELEMETRY_JSON",
                      help="report events/sec vs a baseline store")
    parser.add_argument("--only", metavar="SUBSTR",
                        help="filter scenario ids by substring")
    parser.add_argument("--golden", metavar="FILE", default=str(GOLDEN_PATH),
                        help="golden store path (default: tests/golden/)")
    parser.add_argument("--baseline", metavar="FILE",
                        default="benchmarks/baselines/smoke.json",
                        help="baseline store for --events-gate")
    parser.add_argument("--min-ratio", type=float, default=None,
                        help="fail --events-gate below this geomean ratio")
    parser.add_argument("--queue", choices=("heap", "calendar"), default=None,
                        help="pin the engine queue for --check")
    parser.add_argument("--procs", choices=("thread", "generator"),
                        default=None,
                        help="pin the process backend for --check")
    args = parser.parse_args(argv[1:])
    golden = Path(args.golden)

    def progress(sid: str) -> None:
        print(f"  .. {sid}", flush=True)

    if args.events_gate:
        report, ok = events_per_sec_gate(args.events_gate, args.baseline,
                                         min_ratio=args.min_ratio)
        print(report)
        return 0 if ok else 1
    if args.record:
        doc = record_goldens(golden, only=args.only, progress=progress)
        print(f"recorded {len(doc['scenarios'])} golden scenarios "
              f"-> {golden}")
        return 0
    if args.dual:
        problems = dual_run(only=args.only, progress=progress)
    elif args.dual_procs:
        problems = dual_procs_run(only=args.only, progress=progress)
    else:
        problems = check_goldens(golden, only=args.only, queue=args.queue,
                                 procs=args.procs, progress=progress)
    if problems:
        print(f"\n{len(problems)} mismatch(es):")
        for p in problems:
            print(f"  FAIL {p}")
        return 1
    print("\nall scenarios bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
