"""Scaling-curve benchmark suite (the continuation-engine payoff).

The paper's testbeds stop at 4 nodes (§5); the continuation-based process
scheduler removes the one-OS-thread-per-simulated-process ceiling, so the
simulator can extrapolate both fabrics to commodity-cluster sizes. This
module runs one workload across a ladder of node counts per fabric and
emits **standard telemetry records** (:mod:`repro.bench.telemetry`), so
scaling curves join the same baseline store and regression gates as the
figure suites — ``events_per_sec`` is the gated simulator-speed metric.

Curve points reuse the evaluation presets at the small end (``sw-dsm-4``,
``hybrid-4``) and the large-cluster presets of :mod:`repro.config` above
that (``eth-*`` Ethernet; ``sci-torus-*``, the 2D-torus SCI layout Dolphin
used for large installations). Every record carries ``nodes`` and
``fabric`` fields on top of the canonical schema so the curve can be
re-plotted straight from the document.

CLI: ``python -m repro bench scaling`` (optionally ``--max-nodes 1024``,
``--baseline`` to gate against a stored curve).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.telemetry import SCHEMA, run_unit
from repro.errors import ConfigurationError

__all__ = ["CURVES", "DEFAULT_LABEL", "DEFAULT_SCALE", "run_scaling_curves",
           "curve_points", "render_scaling"]

#: fabric -> ladder of (node count, preset name), small to large.
CURVES: Dict[str, Tuple[Tuple[int, str], ...]] = {
    "eth": ((4, "sw-dsm-4"), (64, "eth-64"), (256, "eth-256"),
            (1024, "eth-1024")),
    "sci": ((4, "hybrid-4"), (64, "sci-torus-64"), (256, "sci-torus-256"),
            (1024, "sci-torus-1024")),
}

#: PI is the scaling workload: its work partitions evenly at any rank
#: count and its lock+barrier epilogue exercises the synchronization
#: fan-in that actually limits large clusters.
DEFAULT_LABEL = "PI"
DEFAULT_SCALE = 0.05


def run_scaling_curves(fabrics: Sequence[str] = ("eth", "sci"),
                       max_nodes: int = 256,
                       label: str = DEFAULT_LABEL,
                       scale: float = DEFAULT_SCALE,
                       repeat: int = 1,
                       progress: Optional[Callable[[str], None]] = None,
                       ) -> Dict[str, Any]:
    """Run ``label`` across each fabric's node-count ladder up to
    ``max_nodes``; returns a telemetry document (suite ``"scaling"``)."""
    unknown = [f for f in fabrics if f not in CURVES]
    if unknown:
        raise ConfigurationError(
            f"unknown fabric(s) {unknown}; known: {sorted(CURVES)}")
    records: List[Dict[str, Any]] = []
    for fabric in fabrics:
        for nodes, preset_name in CURVES[fabric]:
            if nodes > max_nodes:
                continue
            if progress is not None:
                progress(f"{fabric}/{nodes} ({preset_name}/{label})")
            record = run_unit(preset_name, label, scale, repeat=repeat,
                              suite="scaling")
            record["fabric"] = fabric
            record["nodes"] = nodes
            records.append(record)
    import platform as _host_platform
    import sys

    return {
        "schema": SCHEMA,
        "suite": "scaling",
        "scale": scale,
        "repeat": repeat,
        "host": {
            "python": sys.version.split()[0],
            "machine": _host_platform.machine(),
            "system": _host_platform.system(),
        },
        "records": records,
    }


def curve_points(doc: Dict[str, Any]) -> Dict[str, List[Dict[str, Any]]]:
    """fabric -> records sorted by node count, from a scaling document."""
    out: Dict[str, List[Dict[str, Any]]] = {}
    for rec in doc.get("records", []):
        out.setdefault(rec.get("fabric", "?"), []).append(rec)
    for recs in out.values():
        recs.sort(key=lambda r: r.get("nodes", 0))
    return out


def render_scaling(doc: Dict[str, Any]) -> str:
    """Text table of the curves: one row per (fabric, node count)."""
    from repro.bench.report import render_table

    rows = []
    for fabric, recs in sorted(curve_points(doc).items()):
        base = recs[0]["virtual_seconds"] if recs else 0.0
        for rec in recs:
            speedup = (base / rec["virtual_seconds"]
                       if rec["virtual_seconds"] > 0 else float("inf"))
            rows.append([fabric, rec["nodes"], rec["preset"],
                         f"{rec['virtual_seconds'] * 1e3:.3f}",
                         f"x{speedup:.2f}",
                         rec["events_executed"],
                         f"{rec['events_per_sec']:,.0f}",
                         f"{rec['host_seconds'] * 1e3:.1f}"])
    return render_table(
        ["fabric", "nodes", "preset", "virtual ms", "vs smallest",
         "events", "events/s", "host ms"],
        rows, title=f"scaling curves ({doc.get('records') and doc['records'][0]['benchmark']}"
                    f" at scale {doc.get('scale')})")
