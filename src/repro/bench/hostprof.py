"""Host-side profiling of the simulator itself.

Everything else in ``repro`` measures *virtual* time — the simulated
cluster's clock. This module measures the **host**: where does the real
wall-clock time of a simulation run go, and how fast does the engine
dispatch events? That is the number the ROADMAP's "as fast as the hardware
allows" goal optimizes, and the telemetry records of
:mod:`repro.bench.telemetry` gate.

Two complementary instruments:

* :class:`HostProfiler` — a thin cProfile wrapper: run any callable,
  keep the top-N functions by cumulative host time, render them as the
  optimization worklist (``python -m repro bench run --profile``).
* :class:`PhaseWallTimers` — coarse per-phase wall timers wrapped around
  the three host hot paths (engine event loop, active-message posting and
  RPC, DSM protocol entry points). Timers are *inclusive*: a DSM fetch
  that blocks on an RPC counts its wall time in both phases, so phases
  overlap and do not sum to the total — they answer "which layer should
  cProfile zoom into", not "what partitions the runtime" (that is the
  virtual-time job of :mod:`repro.obs.critical_path`).

Both instruments are pure host-side observers: they never touch the
virtual clock, so instrumented runs stay bit-identical in simulated time.
"""

from __future__ import annotations

import cProfile
import inspect
import pstats
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["HotFunction", "HostProfiler", "PhaseWallTimers",
           "profile_host_call"]


@dataclass
class HotFunction:
    """One row of the host profile: a function and its cumulative cost."""

    name: str            # "module:lineno(function)"
    calls: int
    total_seconds: float  # time inside the function itself
    cumulative_seconds: float

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "calls": self.calls,
                "total_seconds": self.total_seconds,
                "cumulative_seconds": self.cumulative_seconds}


class HostProfiler:
    """cProfile a callable and digest the top-N hot functions.

    The profiler may be reused: successive :meth:`run` calls accumulate
    into the same underlying profile, which is what a min-of-N benchmark
    repeat wants (one combined worklist, not N).
    """

    def __init__(self, top: int = 15) -> None:
        self.top = top
        self._profile = cProfile.Profile()
        self.ran = False

    # ---------------------------------------------------------------- running
    def run(self, fn: Callable[[], Any]) -> Any:
        """Execute ``fn()`` under the profiler and return its result."""
        self._profile.enable()
        try:
            return fn()
        finally:
            self._profile.disable()
            self.ran = True

    # ---------------------------------------------------------------- queries
    def hot_functions(self, top: Optional[int] = None) -> List[HotFunction]:
        """Top functions by cumulative host time, heaviest first."""
        if not self.ran:
            return []
        stats = pstats.Stats(self._profile)
        rows: List[HotFunction] = []
        for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in \
                stats.stats.items():  # type: ignore[attr-defined]
            short = filename.rsplit("/", 1)[-1]
            rows.append(HotFunction(name=f"{short}:{lineno}({funcname})",
                                    calls=int(nc), total_seconds=float(tt),
                                    cumulative_seconds=float(ct)))
        rows.sort(key=lambda r: (-r.cumulative_seconds, r.name))
        return rows[:top if top is not None else self.top]

    def render(self, top: Optional[int] = None) -> str:
        from repro.bench.report import render_table

        rows = [[f.name, f.calls, f"{f.cumulative_seconds * 1e3:.2f}",
                 f"{f.total_seconds * 1e3:.2f}"]
                for f in self.hot_functions(top)]
        return render_table(
            ["function", "calls", "cum ms", "self ms"], rows,
            title="host hot functions (cProfile, by cumulative wall time)")


def profile_host_call(fn: Callable[[], Any],
                      top: int = 15) -> Tuple[Any, HostProfiler]:
    """One-shot helper: run ``fn`` under a fresh :class:`HostProfiler`."""
    prof = HostProfiler(top=top)
    result = prof.run(fn)
    return result, prof


# ------------------------------------------------------------- phase timers
class PhaseWallTimers:
    """Wall-clock accumulators around the simulator's host hot paths.

    ``attach(platform)`` wraps, on that platform's live objects:

    * ``engine.run``                  -> phase ``event_loop``
    * ``fabric.layer.post`` / ``rpc`` (and their ``*_g`` generator-kernel
      twins) -> phase ``am_delivery``
    * ``dsm._access_g`` / ``lock`` / ``barrier`` (+ ``*_g`` twins)
      -> phase ``dsm_protocol``

    Generator kernels are wrapped with a generator shim so the timed window
    spans the kernel's whole drive, not just generator creation — required
    for stackless processes, whose blocking wrappers are never entered.
    A per-phase reentrancy depth keeps recursive entries (a barrier that
    triggers further DSM work, or a blocking wrapper driving its own twin)
    from double-counting. ``detach()`` restores every wrapped attribute.
    """

    #: phase name -> (attribute owner key, method names; missing names are
    #: skipped so the one layer-stack surface list covers every backend)
    _SITES = {
        "event_loop": ("engine", ("run",)),
        "am_delivery": ("am_layer", ("post", "rpc", "post_g", "rpc_g")),
        "dsm_protocol": ("dsm", ("_access_g", "lock", "barrier",
                                 "lock_g", "barrier_g")),
    }

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.entries: Dict[str, int] = {}
        self._depth: Dict[str, int] = {}
        self._restore: List[Tuple[Any, str, Any]] = []
        self._attached = False

    # ------------------------------------------------------------- wrapping
    def _wrap(self, owner: Any, method: str, phase: str) -> None:
        original = getattr(owner, method)
        depth = self._depth

        if inspect.isgeneratorfunction(original):
            # Time the whole drive of the kernel, first entry only; while a
            # kernel is suspended at a yield the window stays open, so the
            # phase reads "wall time with >= 1 kernel in flight".
            def timed(*args: Any, **kwargs: Any) -> Any:
                depth[phase] += 1
                if depth[phase] > 1:
                    try:
                        return (yield from original(*args, **kwargs))
                    finally:
                        depth[phase] -= 1
                self.entries[phase] += 1
                t0 = time.perf_counter()
                try:
                    return (yield from original(*args, **kwargs))
                finally:
                    self.seconds[phase] += time.perf_counter() - t0
                    depth[phase] -= 1
        else:
            def timed(*args: Any, **kwargs: Any) -> Any:
                depth[phase] += 1
                if depth[phase] > 1:
                    try:
                        return original(*args, **kwargs)
                    finally:
                        depth[phase] -= 1
                self.entries[phase] += 1
                t0 = time.perf_counter()
                try:
                    return original(*args, **kwargs)
                finally:
                    self.seconds[phase] += time.perf_counter() - t0
                    depth[phase] -= 1

        self._restore.append((owner, method, original))
        setattr(owner, method, timed)

    def attach(self, platform) -> "PhaseWallTimers":
        """Instrument a built platform (idempotent)."""
        if self._attached:
            return self
        owners = {"engine": platform.engine, "dsm": platform.dsm,
                  "am_layer": getattr(platform.fabric, "layer", None)
                  if platform.fabric is not None else None}
        for phase, (owner_key, methods) in self._SITES.items():
            owner = owners[owner_key]
            if owner is None:
                continue  # SMP platform: no messaging fabric
            self.seconds[phase] = 0.0
            self.entries[phase] = 0
            self._depth[phase] = 0
            for method in methods:
                if hasattr(owner, method):
                    self._wrap(owner, method, phase)
        self._attached = True
        return self

    def detach(self) -> None:
        for owner, method, original in reversed(self._restore):
            setattr(owner, method, original)
        self._restore.clear()
        self._attached = False

    # -------------------------------------------------------------- queries
    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {phase: {"seconds": self.seconds[phase],
                        "entries": float(self.entries[phase])}
                for phase in sorted(self.seconds)}

    def render(self) -> str:
        from repro.bench.report import render_table

        rows = [[phase, self.entries[phase],
                 f"{self.seconds[phase] * 1e3:.2f}"]
                for phase in sorted(self.seconds)]
        return render_table(
            ["phase", "entries", "wall ms (inclusive)"], rows,
            title="host phase timers (overlapping; see docs/benchmarking.md)")
