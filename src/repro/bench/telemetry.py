"""Structured, machine-readable benchmark telemetry.

`repro.bench.experiments` prints tables; this module makes every benchmark
run leave a **comparable, versioned record** instead — the continuous-
benchmarking practice of ASV-style harnesses applied to the reproduction.
One :func:`run_suite_telemetry` call produces a JSON document
(``BENCH_<suite>.json``) holding one record per benchmark execution:

* identity — benchmark id (``<preset>/<label>``), app, params, preset,
  platform description, scale, native-binding flag, and a config
  **fingerprint** (sha256 over everything that determines the run) so a
  baseline comparison can refuse to compare apples to oranges;
* virtual-time results — total seconds, per-phase seconds, and the
  figure-label seconds this execution covers (the LU splits share one
  execution), all deterministic and therefore hard-gateable;
* host-time results — wall seconds (min over ``--repeat`` runs, with all
  repeats recorded for MAD-based noise estimation), engine events
  executed, and events/second — the simulator-speed number the ROADMAP's
  "as fast as the hardware allows" goal tracks;
* the critical-path compute/protocol/wire/blocked breakdown from
  :mod:`repro.obs.critical_path` (cluster-wide seconds per category).

:func:`validate_telemetry` is the schema gate used by tests and CI;
:mod:`repro.bench.baseline` compares documents and applies verdicts.
"""

from __future__ import annotations

import hashlib
import json
import platform as _host_platform
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.bench.runners import WORKLOADS, run_app_detailed
from repro.config import ClusterConfig, preset
from repro.errors import ConfigurationError

__all__ = ["SCHEMA", "CP_CATEGORIES", "SuiteSpec", "SUITES",
           "config_fingerprint", "run_unit", "run_suite_telemetry",
           "validate_telemetry", "telemetry_to_json", "load_telemetry"]

#: Schema identifier; bump the suffix on breaking record changes.
SCHEMA = "repro.bench.telemetry/1"

#: critical-path categories, mirrored from repro.obs.critical_path
CP_CATEGORIES = ("compute", "protocol", "wire", "blocked")
_CP_CATEGORIES = CP_CATEGORIES


# ------------------------------------------------------------------ suites
@dataclass
class SuiteSpec:
    """A named set of benchmark executions (preset x workload)."""

    name: str
    #: default working-set scale (1.0 = the paper's Table 1 sizes)
    scale: float
    #: (preset name, native binding) pairs to run
    presets: Tuple[Tuple[str, bool], ...]
    #: primary figure labels to execute per preset; labels sharing an
    #: execution (the LU splits) are covered by their primary ("LU all")
    labels: Tuple[str, ...]

    def unit_ids(self) -> List[str]:
        return [f"{name}/{label}" for name, _native in self.presets
                for label in self.labels]


#: Workload labels that stand for one execution each; the LU splits
#: (LU / LU core / LU bar) ride on "LU all" via its recorded phases.
_PRIMARY_LABELS = ("MatMult", "PI", "SOR opt", "SOR", "LU all",
                   "WATER 288", "WATER 343")

#: Extra figure labels each primary label's execution also covers:
#: primary label -> {figure label: phase name}.
_DERIVED_LABELS: Dict[str, Dict[str, str]] = {
    "LU all": {"LU": "no_init", "LU core": "core", "LU bar": "barrier"},
}

SUITES: Dict[str, SuiteSpec] = {
    # CI-speed suite: every platform the paper-shape gate needs, tiny
    # working sets. Full run is a few host seconds.
    "smoke": SuiteSpec(
        name="smoke", scale=0.05,
        presets=(("smp-2", False), ("sw-dsm-2", False), ("sw-dsm-4", False),
                 ("hybrid-2", False), ("hybrid-4", False),
                 ("native-jiajia-4", True)),
        labels=_PRIMARY_LABELS),
    # The paper's full working sets (minutes of host time).
    "paper": SuiteSpec(
        name="paper", scale=1.0,
        presets=(("smp-2", False), ("sw-dsm-2", False), ("sw-dsm-4", False),
                 ("hybrid-2", False), ("hybrid-4", False),
                 ("native-jiajia-4", True)),
        labels=_PRIMARY_LABELS),
}


# ------------------------------------------------------------- fingerprint
def config_fingerprint(config: ClusterConfig, app: str,
                       params: Dict[str, Any], scale: float,
                       native: bool) -> str:
    """sha256 over everything that determines a run's virtual-time result.

    Built from the config's canonical text form plus the fields that text
    omits (call_overhead), the app, its parameters, the scale, and the
    binding — two records compare cleanly iff their fingerprints match.
    """
    material = json.dumps({
        "config": config.to_text(),
        "call_overhead": config.call_overhead,
        "app": app,
        "params": {k: params[k] for k in sorted(params)},
        "scale": scale,
        "native": bool(native),
    }, sort_keys=True)
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------- units
def _unit_config(preset_name: str, overrides: Optional[Dict[str, Any]] = None,
                 faults: Optional[Any] = None,
                 nodes: Optional[int] = None) -> ClusterConfig:
    """A fresh config for one unit, with the sweep axes applied.

    The same construction is used for running and for identity (the
    fingerprint below and the fabric's content address), so overrides,
    fault plans, and node counts can never silently fall out of a
    record's identity.
    """
    config = preset(preset_name)
    if nodes is not None:
        if nodes < 1:
            raise ConfigurationError(f"need at least one node, got {nodes}")
        config.nodes = nodes
    if overrides:
        config.param_overrides.update(overrides)
    if faults is not None:
        config.faults = faults
    return config


def run_unit(preset_name: str, label: str, scale: float,
             native: bool = False, repeat: int = 1,
             suite: str = "adhoc",
             profiler: Optional[Any] = None,
             overrides: Optional[Dict[str, Any]] = None,
             faults: Optional[Any] = None,
             nodes: Optional[int] = None,
             sharing: bool = False) -> Dict[str, Any]:
    """Execute one benchmark unit ``repeat`` times and build its record.

    Virtual time must be identical across repeats (the simulator is
    deterministic); a mismatch raises — that *is* the determinism check.
    Host wall time is taken as the min over repeats (the standard
    noise-floor estimator), with every repeat recorded for MAD analysis.

    ``overrides`` / ``faults`` / ``nodes`` are the sweep axes of
    :mod:`repro.fabric`: machine-parameter overrides merged into the
    preset, a fault plan, and a node-count override.

    ``sharing`` additionally records sharing-pattern analytics
    (:mod:`repro.obs.sharing`) and attaches their rollup as the record's
    schema-versioned ``sharing`` field. Host-side only: virtual time,
    fingerprints, and every canonical field stay identical either way.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    wl = WORKLOADS[label]
    params = wl.params(scale)
    merged = plat = None
    host_all: List[float] = []
    events = 0
    virtual: Optional[float] = None
    for _ in range(repeat):
        config = _unit_config(preset_name, overrides, faults, nodes)
        config.observe = True  # critical-path breakdown; free in virtual time
        config.sharing = bool(sharing)

        def one_run(cfg: ClusterConfig = config):
            return run_app_detailed(cfg, wl.app, native=native, **params)

        merged, plat = (profiler.run(one_run) if profiler is not None
                        else one_run())
        host_all.append(plat.engine.host_seconds)
        events = plat.engine.events_executed
        total = merged.phases["total"]
        if virtual is None:
            virtual = total
        elif virtual != total:
            raise AssertionError(
                f"non-deterministic virtual time for {preset_name}/{label}: "
                f"{virtual} != {total}")
    assert merged is not None and plat is not None and virtual is not None
    host_seconds = min(host_all)

    label_seconds = {label: virtual}
    for derived, phase in _DERIVED_LABELS.get(label, {}).items():
        if phase in merged.phases:
            label_seconds[derived] = merged.phases[phase]

    from repro.obs import critical_path_report

    cp = critical_path_report(plat)
    breakdown = {cat: round(val, 12) for cat, val in cp.totals().items()}

    record: Dict[str, Any] = {
        "id": f"{preset_name}/{label}",
        "suite": suite,
        "benchmark": label,
        "app": wl.app,
        "params": {k: params[k] for k in sorted(params)},
        "preset": preset_name,
        "platform": plat.hamster.platform_description(),
        "native": bool(native),
        "scale": scale,
        "verified": bool(merged.verified),
        "virtual_seconds": virtual,
        "phases": {k: merged.phases[k] for k in sorted(merged.phases)},
        "label_seconds": label_seconds,
        "events_executed": int(events),
        "host_seconds": host_seconds,
        "host_seconds_all": host_all,
        "repeats": repeat,
        "events_per_sec": (events / host_seconds if host_seconds > 0 else 0.0),
        "critical_path": breakdown,
        "fingerprint": config_fingerprint(
            _unit_config(preset_name, overrides, faults, nodes), wl.app,
            params, scale, native),
    }
    if sharing and plat.sharing is not None:
        from repro.obs import sharing_summary

        record["sharing"] = sharing_summary(plat.sharing)
    return record


def run_suite_telemetry(suite: str = "smoke", scale: Optional[float] = None,
                        repeat: int = 1, only: Optional[str] = None,
                        profiler: Optional[Any] = None,
                        progress: Optional[Callable[[str], None]] = None,
                        cache: Optional[Any] = None,
                        sharing: bool = False) -> Dict[str, Any]:
    """Run a named suite and return its telemetry document.

    ``only`` filters unit ids by substring (CI smoke tests run single
    units); ``profiler`` is an optional
    :class:`~repro.bench.hostprof.HostProfiler` wrapped around every run.

    ``cache`` is a duck-typed result cache (the fabric's
    :class:`repro.fabric.cache.TelemetryCache`): when given, every unit
    is looked up by its content address before running — serial runs and
    parallel sweeps share hits — and fresh records are stored back.

    ``sharing`` attaches the sharing-pattern rollup to every record (see
    :func:`run_unit`); the cache is bypassed in that mode so records with
    and without the extra field never mix under one content address.
    """
    try:
        spec = SUITES[suite]
    except KeyError:
        raise ConfigurationError(
            f"unknown suite {suite!r}; known: {sorted(SUITES)}") from None
    use_scale = spec.scale if scale is None else scale
    if sharing:
        cache = None
    records: List[Dict[str, Any]] = []
    for preset_name, native in spec.presets:
        for label in spec.labels:
            unit_id = f"{preset_name}/{label}"
            if only is not None and only not in unit_id:
                continue
            if cache is not None:
                record = cache.lookup(preset_name, label, use_scale, native,
                                      suite)
                if record is not None:
                    if progress is not None:
                        progress(f"{unit_id} [cache hit]")
                    records.append(record)
                    continue
            if progress is not None:
                progress(unit_id)
            record = run_unit(preset_name, label, use_scale,
                              native=native, repeat=repeat,
                              suite=suite, profiler=profiler,
                              sharing=sharing)
            if cache is not None:
                cache.store_record(record)
            records.append(record)
    return {
        "schema": SCHEMA,
        "suite": suite,
        "scale": use_scale,
        "repeat": repeat,
        "host": {
            "python": sys.version.split()[0],
            "machine": _host_platform.machine(),
            "system": _host_platform.system(),
        },
        "records": records,
    }


# ------------------------------------------------------------------ schema
_REQUIRED_RECORD_FIELDS: Dict[str, type] = {
    "id": str, "suite": str, "benchmark": str, "app": str, "preset": str,
    "platform": str, "native": bool, "verified": bool,
    "scale": (int, float), "virtual_seconds": (int, float),
    "host_seconds": (int, float), "events_per_sec": (int, float),
    "events_executed": int, "repeats": int,
    "params": dict, "phases": dict, "label_seconds": dict,
    "critical_path": dict, "fingerprint": str, "host_seconds_all": list,
}


def validate_telemetry(doc: Any) -> List[str]:
    """Schema-check a telemetry document; returns a list of problems
    (empty = valid). Shallow by design — it guards the contract CI and the
    baseline store rely on, not every conceivable corruption."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("suite"), str) or not doc.get("suite"):
        errors.append("suite must be a non-empty string")
    if not isinstance(doc.get("scale"), (int, float)) or doc.get("scale", 0) <= 0:
        errors.append("scale must be a positive number")
    records = doc.get("records")
    if not isinstance(records, list) or not records:
        errors.append("records must be a non-empty list")
        return errors
    seen_ids: set = set()
    for i, rec in enumerate(records):
        where = f"records[{i}]"
        if not isinstance(rec, dict):
            errors.append(f"{where} is not an object")
            continue
        for key, types in _REQUIRED_RECORD_FIELDS.items():
            if key not in rec:
                errors.append(f"{where} missing field {key!r}")
            elif not isinstance(rec[key], types) or (
                    types is int and isinstance(rec[key], bool)):
                errors.append(f"{where}.{key} has wrong type "
                              f"{type(rec[key]).__name__}")
        rid = rec.get("id")
        if isinstance(rid, str):
            if rid in seen_ids:
                errors.append(f"{where} duplicate id {rid!r}")
            seen_ids.add(rid)
        if isinstance(rec.get("virtual_seconds"), (int, float)) \
                and rec["virtual_seconds"] < 0:
            errors.append(f"{where}.virtual_seconds is negative")
        fp = rec.get("fingerprint")
        if isinstance(fp, str) and (len(fp) != 64
                                    or any(c not in "0123456789abcdef" for c in fp)):
            errors.append(f"{where}.fingerprint is not a sha256 hex digest")
        cp = rec.get("critical_path")
        if isinstance(cp, dict):
            unknown = set(cp) - set(_CP_CATEGORIES)
            if unknown:
                errors.append(f"{where}.critical_path has unknown "
                              f"categories {sorted(unknown)}")
            for cat, val in cp.items():
                if not isinstance(val, (int, float)) or val < 0:
                    errors.append(f"{where}.critical_path.{cat} must be a "
                                  "non-negative number")
        for dict_field in ("phases", "label_seconds"):
            values = rec.get(dict_field)
            if isinstance(values, dict):
                for k, v in values.items():
                    if not isinstance(v, (int, float)):
                        errors.append(f"{where}.{dict_field}[{k!r}] is not "
                                      "a number")
        if "sharing" in rec:
            errors.extend(_validate_sharing_field(rec["sharing"], where))
    return errors


def _validate_sharing_field(sh: Any, where: str) -> List[str]:
    """Check a record's optional schema-versioned ``sharing`` rollup."""
    from repro.obs.diagnose import SHARING_SCHEMA

    errors: List[str] = []
    if not isinstance(sh, dict):
        return [f"{where}.sharing is not an object"]
    if sh.get("schema") != SHARING_SCHEMA:
        errors.append(f"{where}.sharing.schema must be {SHARING_SCHEMA!r}, "
                      f"got {sh.get('schema')!r}")
    for key in ("ping_pong_pages", "false_sharing_pages"):
        if not isinstance(sh.get(key), int) or sh.get(key, 0) < 0:
            errors.append(f"{where}.sharing.{key} must be a "
                          "non-negative integer")
    for key in ("top_hot_page_fault_rate_hz", "barrier_max_skew_s"):
        val = sh.get(key)
        if not isinstance(val, (int, float)) or isinstance(val, bool) \
                or val < 0:
            errors.append(f"{where}.sharing.{key} must be a "
                          "non-negative number")
    if not isinstance(sh.get("false_sharing_ranges"), list):
        errors.append(f"{where}.sharing.false_sharing_ranges must be a list")
    return errors


# ---------------------------------------------------------------------- io
def telemetry_to_json(doc: Dict[str, Any], indent: int = 2) -> str:
    """Serialize with stable key order so document diffs are meaningful."""
    return json.dumps(doc, indent=indent, sort_keys=True) + "\n"


def load_telemetry(path: str, validate: bool = True) -> Dict[str, Any]:
    """Load a telemetry document from disk, schema-checking by default."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if validate:
        errors = validate_telemetry(doc)
        if errors:
            raise ValueError(
                f"invalid telemetry document {path}: " + "; ".join(errors[:5]))
    return doc
