"""Evaluation harness (§5).

* :mod:`repro.bench.runners` — one entry point per table/figure: they run
  the actual experiments and return structured rows.
* :mod:`repro.bench.loc_metrics` — the Table 2 line-counting methodology
  (comment/docstring stripping + logical-line normalization).
* :mod:`repro.bench.report` — fixed-width text rendering of the rows, used
  by the pytest benches and by EXPERIMENTS.md generation.
"""

from repro.bench.loc_metrics import count_logical_lines, model_complexity_table
from repro.bench.runners import (
    BENCH_LABELS,
    figure2_overhead,
    figure3_hybrid_vs_sw,
    figure4_two_nodes,
    run_app_on,
    table1_rows,
)
from repro.bench.report import render_table

__all__ = [
    "BENCH_LABELS",
    "run_app_on",
    "table1_rows",
    "figure2_overhead",
    "figure3_hybrid_vs_sw",
    "figure4_two_nodes",
    "count_logical_lines",
    "model_complexity_table",
    "render_table",
]
