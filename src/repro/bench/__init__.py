"""Evaluation harness (§5) and benchmark telemetry.

* :mod:`repro.bench.runners` — one entry point per table/figure: they run
  the actual experiments and return structured rows.
* :mod:`repro.bench.loc_metrics` — the Table 2 line-counting methodology
  (comment/docstring stripping + logical-line normalization).
* :mod:`repro.bench.report` — fixed-width text rendering of the rows, used
  by the pytest benches and by EXPERIMENTS.md generation, plus the
  markdown/HTML telemetry report generator.
* :mod:`repro.bench.telemetry` — structured, schema-validated result
  records per benchmark run (``BENCH_<suite>.json``): virtual times,
  engine events, events/sec, config fingerprints, critical-path
  breakdowns.
* :mod:`repro.bench.baseline` — the committed-baseline store: statistical
  comparison with per-metric verdicts (improve/ok/regress, hard vs soft)
  and the paper-shape gate re-asserting the Figure 2-4 orderings from
  recorded numbers.
* :mod:`repro.bench.hostprof` — host-side profiling of the simulator
  itself (cProfile top-N, per-phase wall timers) so optimization PRs have
  measured targets.
"""

from repro.bench.baseline import (CompareResult, MetricVerdict, compare_docs,
                                  shape_gate)
from repro.bench.hostprof import HostProfiler, PhaseWallTimers
from repro.bench.loc_metrics import count_logical_lines, model_complexity_table
from repro.bench.report import render_table, telemetry_html, telemetry_markdown
from repro.bench.runners import (
    BENCH_LABELS,
    advantage_pct,
    figure2_overhead,
    figure3_hybrid_vs_sw,
    figure4_two_nodes,
    normalized_pct,
    overhead_pct,
    run_app_detailed,
    run_app_on,
    table1_rows,
)
from repro.bench.telemetry import (SUITES, load_telemetry,
                                   run_suite_telemetry, telemetry_to_json,
                                   validate_telemetry)

__all__ = [
    "BENCH_LABELS",
    "run_app_on",
    "run_app_detailed",
    "table1_rows",
    "figure2_overhead",
    "figure3_hybrid_vs_sw",
    "figure4_two_nodes",
    "overhead_pct",
    "advantage_pct",
    "normalized_pct",
    "count_logical_lines",
    "model_complexity_table",
    "render_table",
    "telemetry_markdown",
    "telemetry_html",
    "SUITES",
    "run_suite_telemetry",
    "validate_telemetry",
    "telemetry_to_json",
    "load_telemetry",
    "compare_docs",
    "shape_gate",
    "CompareResult",
    "MetricVerdict",
    "HostProfiler",
    "PhaseWallTimers",
]
