"""Regenerate every table and figure of the paper's evaluation.

Run as a module::

    python -m repro.bench.experiments [scale]

Produces the markdown blocks recorded in EXPERIMENTS.md. Scale 1.0 runs the
paper's full Table 1 working sets (1024×1024 matrices, 288/343 molecules);
the pytest benches use the same runners at reduced scale.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List

from repro.bench.loc_metrics import model_complexity_table
from repro.bench.runners import (BENCH_LABELS, figure2_overhead,
                                 figure3_hybrid_vs_sw, figure4_two_nodes,
                                 table1_rows)

PAPER_TABLE2 = {
    "SPMD model": (502, 23, 21.8),
    "SMP/SPMD model": (581, 25, 23.2),
    "ANL macros": (146, 20, 7.3),
    "TreadMarks API": (326, 13, 25.1),
    "HLRC API": (137, 25, 5.5),
    "JiaJia API (subset)": (43, 7, 6.1),
    "POSIX threads": (725, 51, 14.2),
    "WIN32 threads": (988, 42, 23.5),
    "Cray put/get (shmem) API": (505, 29, 17.4),
}


def md_table(headers: List[str], rows: List[List]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        cells = [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def gen_table1() -> str:
    rows = table1_rows()
    return "### Table 1 — Benchmarks and their working sets\n\n" + md_table(
        ["Benchmark", "Working set"], [list(r) for r in rows])


def gen_table2() -> str:
    rows = model_complexity_table()
    printable = []
    for r in rows:
        p_lines, p_calls, p_ratio = PAPER_TABLE2[r.model]
        printable.append([r.model, r.lines, r.api_calls,
                          round(r.lines_per_call, 1),
                          p_lines, p_calls, p_ratio])
    avg = sum(r.lines for r in rows) / sum(r.api_calls for r in rows)
    return ("### Table 2 — Implementation complexity of programming models\n\n"
            + md_table(["Model", "lines", "#API calls", "lines/call",
                        "paper lines", "paper #calls", "paper lines/call"],
                       printable)
            + f"\n\nAverage: **{avg:.1f} lines/call** "
              f"(paper: < 25 lines/call).")


def gen_figure2(scale: float) -> str:
    data = figure2_overhead(scale=scale)
    rows = [[label, round(v, 2)] for label, v in data.items()]
    return (f"### Figure 2 — Overhead of HAMSTER vs native JiaJia "
            f"(4 nodes, scale={scale})\n\n"
            + md_table(["Benchmark", "overhead % (+ = slower)"], rows)
            + f"\n\nRange: {min(data.values()):+.2f}% … "
              f"{max(data.values()):+.2f}% "
              "(paper: −4.5% … +6.5%).")


def gen_figure3(scale: float) -> str:
    data = figure3_hybrid_vs_sw(scale=scale)
    rows = [[label, round(v, 2)] for label, v in data.items()]
    return (f"### Figure 3 — Hybrid-DSM advantage over SW-DSM "
            f"(4 nodes, scale={scale})\n\n"
            + md_table(["Benchmark", "advantage % (+ = hybrid faster)"], rows))


def gen_figure4(scale: float) -> str:
    data = figure4_two_nodes(scale=scale)
    rows = [[label, 100.0, round(v["hybrid"], 1), round(v["software"], 1)]
            for label, v in data.items()]
    return (f"### Figure 4 — 2-node platforms, time normalized to the SMP "
            f"(scale={scale}; >100 = slower than SMP)\n\n"
            + md_table(["Benchmark", "hardware %", "hybrid %", "software %"],
                       rows))


def main(argv: List[str]) -> int:
    scale = float(argv[1]) if len(argv) > 1 else 1.0
    sections = [
        ("Table 1", gen_table1, False),
        ("Table 2", gen_table2, False),
        ("Figure 2", gen_figure2, True),
        ("Figure 3", gen_figure3, True),
        ("Figure 4", gen_figure4, True),
    ]
    for name, fn, takes_scale in sections:
        t0 = time.time()
        block = fn(scale) if takes_scale else fn()
        elapsed = time.time() - t0
        print(block)
        print(f"\n*(regenerated in {elapsed:.1f}s wall-clock)*\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
