"""Regenerate every table and figure of the paper's evaluation.

Run as a module::

    python -m repro.bench.experiments [scale] [--json-out FILE]

Produces the markdown blocks recorded in EXPERIMENTS.md — and, with
``--json-out``, a machine-readable document holding the raw per-platform
virtual seconds plus every derived figure, so the recorded numbers
regenerate from the artifact instead of stdout scraping. Scale 1.0 runs
the paper's full Table 1 working sets (1024×1024 matrices, 288/343
molecules); the pytest benches use the same runners at reduced scale.

Each platform's suite runs **once**: the figures are derived from one
shared ``preset -> label -> seconds`` map through the same pure helpers
(:func:`repro.bench.runners.overhead_pct` and friends) that the baseline
store's paper-shape gate applies to recorded telemetry.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, List, Optional

from repro.bench.loc_metrics import model_complexity_table
from repro.bench.runners import (advantage_pct, normalized_pct, overhead_pct,
                                 run_suite, table1_rows)
from repro.config import preset

#: schema identifier for the --json-out artifact
EXPERIMENTS_SCHEMA = "repro.bench.experiments/1"

PAPER_TABLE2 = {
    "SPMD model": (502, 23, 21.8),
    "SMP/SPMD model": (581, 25, 23.2),
    "ANL macros": (146, 20, 7.3),
    "TreadMarks API": (326, 13, 25.1),
    "HLRC API": (137, 25, 5.5),
    "JiaJia API (subset)": (43, 7, 6.1),
    "POSIX threads": (725, 51, 14.2),
    "WIN32 threads": (988, 42, 23.5),
    "Cray put/get (shmem) API": (505, 29, 17.4),
}

#: the platforms the figures need; native binding only for the Figure 2
#: baseline
_FIGURE_PRESETS = (("sw-dsm-4", False), ("native-jiajia-4", True),
                   ("hybrid-4", False), ("smp-2", False),
                   ("hybrid-2", False), ("sw-dsm-2", False))


def md_table(headers: List[str], rows: List[List]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        cells = [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)


def collect_times(scale: float, workers: int = 1,
                  cache_dir: Optional[str] = None
                  ) -> Dict[str, Dict[str, float]]:
    """Run every figure platform once: preset -> label -> virtual seconds.

    With ``workers > 1`` or a ``cache_dir``, the grid runs through the
    experiment fabric (:mod:`repro.fabric`): the preset × workload cells
    execute in parallel worker processes and land in the content-addressed
    result cache, so regenerating unchanged figures costs zero simulation
    time. The virtual-time numbers are identical to the serial path — the
    simulator is deterministic and both paths run the same cells.
    """
    if workers <= 1 and cache_dir is None:
        return {name: run_suite(preset(name), scale=scale, native=native)
                for name, native in _FIGURE_PRESETS}
    from repro.fabric import DEFAULT_CACHE_DIR, GridSpec, run_sweep
    from repro.bench.telemetry import _PRIMARY_LABELS

    spec = GridSpec(presets=tuple(name for name, _ in _FIGURE_PRESETS),
                    native=tuple(nat for _, nat in _FIGURE_PRESETS),
                    labels=_PRIMARY_LABELS, scales=(scale,),
                    suite="experiments")
    result = run_sweep(spec, workers=workers,
                       cache_dir=cache_dir or DEFAULT_CACHE_DIR)
    bad = result.manifest.failed_cells()
    if bad:
        raise RuntimeError(
            "experiment fabric could not complete the figure grid: "
            + "; ".join(f"{c.id} ({c.error})" for c in bad))
    times: Dict[str, Dict[str, float]] = {name: {} for name, _ in _FIGURE_PRESETS}
    for record in result.records:
        # label_seconds carries the derived LU splits of each execution,
        # so this reconstructs exactly what run_suite returns.
        times[record["preset"]].update(record["label_seconds"])
    return times


def gen_table1() -> str:
    rows = table1_rows()
    return "### Table 1 — Benchmarks and their working sets\n\n" + md_table(
        ["Benchmark", "Working set"], [list(r) for r in rows])


def gen_table2() -> str:
    rows = model_complexity_table()
    printable = []
    for r in rows:
        p_lines, p_calls, p_ratio = PAPER_TABLE2[r.model]
        printable.append([r.model, r.lines, r.api_calls,
                          round(r.lines_per_call, 1),
                          p_lines, p_calls, p_ratio])
    avg = sum(r.lines for r in rows) / sum(r.api_calls for r in rows)
    return ("### Table 2 — Implementation complexity of programming models\n\n"
            + md_table(["Model", "lines", "#API calls", "lines/call",
                        "paper lines", "paper #calls", "paper lines/call"],
                       printable)
            + f"\n\nAverage: **{avg:.1f} lines/call** "
              f"(paper: < 25 lines/call).")


def gen_figure2(scale: float, times: Dict[str, Dict[str, float]]) -> str:
    data = overhead_pct(times["sw-dsm-4"], times["native-jiajia-4"])
    rows = [[label, round(v, 2)] for label, v in data.items()]
    return (f"### Figure 2 — Overhead of HAMSTER vs native JiaJia "
            f"(4 nodes, scale={scale})\n\n"
            + md_table(["Benchmark", "overhead % (+ = slower)"], rows)
            + f"\n\nRange: {min(data.values()):+.2f}% … "
              f"{max(data.values()):+.2f}% "
              "(paper: −4.5% … +6.5%).")


def gen_figure3(scale: float, times: Dict[str, Dict[str, float]]) -> str:
    data = advantage_pct(times["sw-dsm-4"], times["hybrid-4"])
    rows = [[label, round(v, 2)] for label, v in data.items()]
    return (f"### Figure 3 — Hybrid-DSM advantage over SW-DSM "
            f"(4 nodes, scale={scale})\n\n"
            + md_table(["Benchmark", "advantage % (+ = hybrid faster)"], rows))


def gen_figure4(scale: float, times: Dict[str, Dict[str, float]]) -> str:
    data = normalized_pct(times["smp-2"], times["hybrid-2"], times["sw-dsm-2"])
    rows = [[label, 100.0, round(v["hybrid"], 1), round(v["software"], 1)]
            for label, v in data.items()]
    return (f"### Figure 4 — 2-node platforms, time normalized to the SMP "
            f"(scale={scale}; >100 = slower than SMP)\n\n"
            + md_table(["Benchmark", "hardware %", "hybrid %", "software %"],
                       rows))


def experiments_doc(scale: float,
                    times: Dict[str, Dict[str, float]]) -> Dict:
    """The machine-readable artifact: raw times plus derived figures."""
    complexity = [{"model": r.model, "lines": r.lines,
                   "api_calls": r.api_calls,
                   "lines_per_call": round(r.lines_per_call, 2)}
                  for r in model_complexity_table()]
    return {
        "schema": EXPERIMENTS_SCHEMA,
        "scale": scale,
        "virtual_seconds": times,
        "table2_complexity": complexity,
        "figure2_overhead_pct":
            overhead_pct(times["sw-dsm-4"], times["native-jiajia-4"]),
        "figure3_advantage_pct":
            advantage_pct(times["sw-dsm-4"], times["hybrid-4"]),
        "figure4_normalized_pct":
            normalized_pct(times["smp-2"], times["hybrid-2"],
                           times["sw-dsm-2"]),
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog=argv[0] if argv else "experiments",
        description="regenerate the paper's tables and figures")
    parser.add_argument("scale", nargs="?", type=float, default=1.0,
                        help="working-set scale (1.0 = paper sizes)")
    parser.add_argument("--json-out", metavar="FILE",
                        help="also write the raw+derived numbers as JSON")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="run the figure grid through the experiment "
                             "fabric with N worker processes")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed result cache directory "
                             "(implies the fabric path; unchanged cells "
                             "cost zero simulation time)")
    args = parser.parse_args(argv[1:])
    scale = args.scale

    t0 = time.time()
    times = collect_times(scale, workers=args.workers,
                          cache_dir=args.cache_dir)
    collect_elapsed = time.time() - t0

    print(gen_table1())
    print()
    print(gen_table2())
    print()
    for block in (gen_figure2(scale, times), gen_figure3(scale, times),
                  gen_figure4(scale, times)):
        print(block)
        print()
    print(f"*(platform suites regenerated in {collect_elapsed:.1f}s "
          "wall-clock)*")

    if args.json_out:
        from repro.tools.export import write_text

        write_text(args.json_out,
                   json.dumps(experiments_doc(scale, times), indent=2,
                              sort_keys=True) + "\n")
        print(f"\njson telemetry: written to {args.json_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
