"""Implementation-complexity measurement (Table 2).

The paper counts each model layer's size with "a simple script that first
removes comments and empty lines, and then (to a certain degree)
standardizes the coding style". The Python analogue implemented here:

* comments and blank lines are removed (tokenize-level),
* docstrings are removed (they are documentation, not implementation),
* multi-line statements are *normalized to one logical line* (the style
  standardization — bracket continuation style stops mattering).

``lines`` is therefore the count of logical statements terminating in a
NEWLINE token, minus docstring statements.
"""

from __future__ import annotations

import ast
import importlib
import io
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["count_logical_lines", "ComplexityRow", "model_complexity_table"]


def _docstring_lines(source: str) -> Set[int]:
    """Physical line numbers occupied by docstring statements."""
    out: Set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.Module, ast.ClassDef, ast.FunctionDef,
                             ast.AsyncFunctionDef)):
            body = getattr(node, "body", [])
            if body and isinstance(body[0], ast.Expr) and isinstance(
                    body[0].value, ast.Constant) and isinstance(
                    body[0].value.value, str):
                expr = body[0]
                for line in range(expr.lineno, expr.end_lineno + 1):
                    out.add(line)
    return out


def _twin_kernel_lines(source: str) -> Set[int]:
    """Physical line numbers of ``*_g`` generator-kernel twins.

    The continuation engine requires every blocking operation to carry a
    ``*_g`` twin that yields instead of blocking; the blocking form and its
    twin are the *same* API operation, so Table 2 counts the blocking
    surface only — tallying both would double-count each call.
    """
    out: Set[int] = set()
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node.name.endswith("_g"):
            start = node.lineno
            if node.decorator_list:
                start = min(d.lineno for d in node.decorator_list)
            for line in range(start, node.end_lineno + 1):
                out.add(line)
    return out


def count_logical_lines(source: str, *, include_g_twins: bool = True) -> int:
    """Logical (normalized) lines of code in ``source``."""
    doc_lines = _docstring_lines(source)
    if not include_g_twins:
        doc_lines = doc_lines | _twin_kernel_lines(source)
    count = 0
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    line_start: Optional[int] = None
    for tok in tokens:
        if tok.type in (tokenize.COMMENT, tokenize.NL, tokenize.INDENT,
                        tokenize.DEDENT, tokenize.ENCODING,
                        tokenize.ENDMARKER):
            continue
        if line_start is None:
            line_start = tok.start[0]
        if tok.type == tokenize.NEWLINE:
            # One logical line just ended; skip it if it was a docstring.
            if line_start not in doc_lines:
                count += 1
            line_start = None
    return count


def count_file(path: str) -> int:
    with open(path, "r", encoding="utf-8") as fh:
        return count_logical_lines(fh.read())


@dataclass
class ComplexityRow:
    """One Table 2 row."""

    model: str
    lines: int
    api_calls: int

    @property
    def lines_per_call(self) -> float:
        return self.lines / self.api_calls if self.api_calls else float("nan")


#: shared infrastructure attributed to the models that need it (the
#: command-forwarding facility the thread APIs build, §5.2)
_EXTRA_FILES = {
    "POSIX threads": ["repro.models.forwarding"],
    "WIN32 threads": ["repro.models.forwarding"],
}


def _module_source(module_name: str) -> str:
    module = importlib.import_module(module_name)
    with open(module.__file__, "r", encoding="utf-8") as fh:
        return fh.read()


def model_complexity_table() -> List[ComplexityRow]:
    """Measure every Table 2 model layer of this repository."""
    from repro.models import MODEL_REGISTRY, load_model

    rows: List[ComplexityRow] = []
    for display_name, (module_name, _cls) in MODEL_REGISTRY.items():
        cls = load_model(display_name)
        lines = count_logical_lines(_module_source(module_name),
                                    include_g_twins=False)
        for extra in _EXTRA_FILES.get(display_name, ()):
            lines += count_logical_lines(_module_source(extra),
                                         include_g_twins=False)
        rows.append(ComplexityRow(model=display_name, lines=lines,
                                  api_calls=cls.api_call_count()))
    return rows
