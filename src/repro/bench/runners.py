"""Experiment runners — one per table/figure of §5.

Every figure uses the same benchmark label set as the paper's bar charts:
MatMult, PI, SOR opt, SOR, LU all, LU, LU core, LU bar, WATER 288,
WATER 343 (one LU execution yields its four split measurements).

``scale`` scales the working sets: 1.0 is the paper's Table 1 size
(1024×1024 matrices, 288/343 molecules); the benches default to a reduced
scale that preserves every qualitative relationship while keeping the
(real-world) run time of the full suite manageable.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import get_app
from repro.apps.common import AppResult, merge_rank_results
from repro.config import ClusterConfig, preset
from repro.models.jiajia_api import JiaJiaApi
from repro.models.native_jiajia import NativeJiaJiaApi

__all__ = ["BENCH_LABELS", "run_app_on", "run_app_detailed", "run_suite",
           "table1_rows", "figure2_overhead", "figure3_hybrid_vs_sw",
           "figure4_two_nodes", "overhead_pct", "advantage_pct",
           "normalized_pct", "WORKLOADS"]

#: Figure bar labels in the paper's order.
BENCH_LABELS = ["MatMult", "PI", "SOR opt", "SOR", "LU all", "LU",
                "LU core", "LU bar", "WATER 288", "WATER 343"]


@dataclass
class Workload:
    """An (app, params, phase) triple behind one figure label."""

    app: str
    params: Callable[[float], dict]   # scale -> app kwargs
    phase: str = "total"
    #: labels sharing one execution (the LU splits)
    shares: Optional[str] = None


def _dim(scale: float, full: int, minimum: int = 32, multiple: int = 16) -> int:
    """Scale a matrix dimension, keeping page/block alignment friendly."""
    n = max(minimum, int(full * scale))
    return max(minimum, (n // multiple) * multiple)


WORKLOADS: Dict[str, Workload] = {
    "MatMult": Workload("matmult", lambda s: {"n": _dim(s, 1024)}),
    "PI": Workload("pi", lambda s: {"intervals": max(1 << 12, int((1 << 23) * s))}),
    "SOR opt": Workload("sor", lambda s: {"n": _dim(s, 1024),
                                          "iterations": 10, "locality": True}),
    "SOR": Workload("sor", lambda s: {"n": _dim(s, 1024),
                                      "iterations": 10, "locality": False}),
    "LU all": Workload("lu", lambda s: {"n": _dim(s, 1024, 64),
                                        "block": max(16, _dim(s, 1024, 64) // 16)},
                       phase="all", shares="lu"),
    "LU": Workload("lu", lambda s: {"n": _dim(s, 1024, 64),
                                    "block": max(16, _dim(s, 1024, 64) // 16)},
                   phase="no_init", shares="lu"),
    "LU core": Workload("lu", lambda s: {"n": _dim(s, 1024, 64),
                                         "block": max(16, _dim(s, 1024, 64) // 16)},
                        phase="core", shares="lu"),
    "LU bar": Workload("lu", lambda s: {"n": _dim(s, 1024, 64),
                                        "block": max(16, _dim(s, 1024, 64) // 16)},
                       phase="barrier", shares="lu"),
    "WATER 288": Workload("water", lambda s: {"molecules": max(32, int(288 * s)),
                                              "steps": 2}),
    "WATER 343": Workload("water", lambda s: {"molecules": max(40, int(343 * s)),
                                              "steps": 2}),
}


def run_app_detailed(config: ClusterConfig, app: str, native: bool = False,
                     **params):
    """Like :func:`run_app_on`, but also return the built platform so the
    caller can harvest telemetry (engine counters, spans, stats) from it.

    Returns ``(merged AppResult, BuiltPlatform)``.
    """
    plat = config.build()
    api = NativeJiaJiaApi(plat.hamster) if native else JiaJiaApi(plat.hamster)
    fn = get_app(app)
    # functools.partial (not a lambda) so generator-function app bodies are
    # detected by the API's isgeneratorfunction dispatch and run stackless.
    per_rank = api.run(functools.partial(fn, **params))
    merged = merge_rank_results(per_rank)
    if not merged.verified:
        raise AssertionError(
            f"benchmark {app!r} failed verification on {config.name or config.platform}")
    return merged, plat


def run_app_on(config: ClusterConfig, app: str, native: bool = False,
               **params) -> AppResult:
    """Build the platform from ``config``, run ``app`` on it under the
    JiaJia API (HAMSTER or native binding), return the merged result."""
    merged, _plat = run_app_detailed(config, app, native=native, **params)
    return merged


def run_suite(config: ClusterConfig, scale: float = 1.0,
              native: bool = False,
              labels: Optional[List[str]] = None) -> Dict[str, float]:
    """Run all figure labels on one platform; returns label -> seconds.

    Labels sharing an execution (the LU splits) run once.
    """
    labels = labels or BENCH_LABELS
    times: Dict[str, float] = {}
    shared: Dict[str, AppResult] = {}
    for label in labels:
        wl = WORKLOADS[label]
        if wl.shares is not None and wl.shares in shared:
            result = shared[wl.shares]
        else:
            result = run_app_on(config, wl.app, native=native, **wl.params(scale))
            if wl.shares is not None:
                shared[wl.shares] = result
        times[label] = result.phases[wl.phase]
    return times


# ----------------------------------------------------------------- Table 1
def table1_rows() -> List[Tuple[str, str]]:
    """Benchmarks and their working sets, as reported in Table 1."""
    from repro.apps.common import APP_TABLE

    return [(entry["description"], entry["working_set"])
            for entry in APP_TABLE.values()]


# ------------------------------------------------- figure math (pure)
# The figure entry points below *run* platforms and then derive the paper's
# percentages. The derivations are split out as pure functions over
# label -> seconds mappings so that recorded telemetry (repro.bench.telemetry)
# can re-derive the same figures from stored numbers without re-running —
# the baseline store's paper-shape gate leans on this.

def overhead_pct(t_hamster: Dict[str, float],
                 t_native: Dict[str, float]) -> Dict[str, float]:
    """Figure 2 sign convention: positive = HAMSTER slower than native."""
    return {label: 100.0 * (t_hamster[label] - t_native[label]) / t_native[label]
            for label in t_hamster if label in t_native}


def advantage_pct(t_sw: Dict[str, float],
                  t_hybrid: Dict[str, float]) -> Dict[str, float]:
    """Figure 3 sign convention: positive = hybrid faster than SW-DSM."""
    return {label: 100.0 * (t_sw[label] - t_hybrid[label]) / t_sw[label]
            for label in t_sw if label in t_hybrid}


def normalized_pct(t_hw: Dict[str, float], t_hy: Dict[str, float],
                   t_sw: Dict[str, float]) -> Dict[str, Dict[str, float]]:
    """Figure 4 normalization: SMP = 100%, larger = slower."""
    out: Dict[str, Dict[str, float]] = {}
    for label in t_hw:
        if label not in t_hy or label not in t_sw:
            continue
        base = t_hw[label]
        out[label] = {
            "hardware": 100.0,
            "hybrid": 100.0 * t_hy[label] / base if base else float("nan"),
            "software": 100.0 * t_sw[label] / base if base else float("nan"),
        }
    return out


# ---------------------------------------------------------------- Figure 2
def figure2_overhead(scale: float = 1.0, nodes: int = 4,
                     labels: Optional[List[str]] = None) -> Dict[str, float]:
    """Overhead (%) of HAMSTER-bound vs native JiaJia on ``nodes`` nodes.

    Positive = HAMSTER slower (degradation), negative = HAMSTER faster —
    the sign convention of Figure 2.
    """
    hamster_cfg = preset(f"sw-dsm-{nodes}")
    native_cfg = preset(f"native-jiajia-{nodes}")
    t_hamster = run_suite(hamster_cfg, scale=scale, labels=labels)
    t_native = run_suite(native_cfg, scale=scale, native=True, labels=labels)
    return overhead_pct(t_hamster, t_native)


# ---------------------------------------------------------------- Figure 3
def figure3_hybrid_vs_sw(scale: float = 1.0, nodes: int = 4,
                         labels: Optional[List[str]] = None) -> Dict[str, float]:
    """Performance advantage (%) of the hybrid DSM over the SW-DSM.

    Positive = hybrid faster (the paper plots hybrid's advantage with
    SW-DSM as the baseline): ``100 * (t_sw - t_hybrid) / t_sw``.
    """
    t_sw = run_suite(preset(f"sw-dsm-{nodes}"), scale=scale, labels=labels)
    t_hy = run_suite(preset(f"hybrid-{nodes}"), scale=scale, labels=labels)
    return advantage_pct(t_sw, t_hy)


# ---------------------------------------------------------------- Figure 4
def figure4_two_nodes(scale: float = 1.0,
                      labels: Optional[List[str]] = None) -> Dict[str, Dict[str, float]]:
    """Hardware- vs hybrid- vs software-DSM on two nodes (two CPUs for the
    hardware case), normalized to the hardware-DSM (SMP) time = 100%.

    Returns label -> {"hardware": 100.0, "hybrid": pct, "software": pct}
    where pct > 100 means slower than the SMP.
    """
    t_hw = run_suite(preset("smp-2"), scale=scale, labels=labels)
    t_hy = run_suite(preset("hybrid-2"), scale=scale, labels=labels)
    t_sw = run_suite(preset("sw-dsm-2"), scale=scale, labels=labels)
    return normalized_pct(t_hw, t_hy, t_sw)
