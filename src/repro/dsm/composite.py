"""Multi-DSM composition — the §6 future-work direction, implemented.

    "HAMSTER's ability to concurrently support multiple DSM systems within
    one framework offers the opportunity [...] to combine several different
    DSM mechanisms within the execution of a single application, resulting
    in custom-tailored, shared memory solutions."

A :class:`CompositeMemorySystem` hosts several child substrates over one
cluster and routes each *region* to the substrate chosen at allocation time
(via the ``system=`` annotation, or a policy callback). The children share
the composite's global address space, so page-to-region resolution works
across systems, and the composite's synchronization operations compose the
children's consistency actions:

* ``barrier``/``unlock`` first flush every *secondary* child's pending
  writes (their ``sync_consistency``), then run the primary child's
  synchronization, so release semantics hold across all regions no matter
  which substrate they live on.

Typical use (see ``benchmarks/test_extension_multidsm.py``): read-mostly
data on the *caching* SW-DSM, write-streamed data on the hybrid DSM's
hardware path — faster than either substrate hosting everything.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.dsm.base import GlobalMemorySystem, Run
from repro.errors import ConfigurationError, MemoryError_
from repro.machine.cluster import Cluster
from repro.memory.address_space import Region
from repro.memory.layout import Distribution

__all__ = ["CompositeMemorySystem"]

#: policy: (nbytes, name) -> child key
Policy = Callable[[int, str], str]


class CompositeMemorySystem(GlobalMemorySystem):
    """Route regions across multiple DSM substrates on one cluster."""

    kind = "composite"

    def __init__(self, cluster: Cluster, children: Dict[str, GlobalMemorySystem],
                 primary: str, default_policy: Optional[Policy] = None) -> None:
        if primary not in children:
            raise ConfigurationError(
                f"primary {primary!r} not among children {sorted(children)}")
        first = next(iter(children.values()))
        super().__init__(cluster, n_procs=first.n_procs,
                         placement=first.placement)
        for key, child in children.items():
            if child.n_procs != self.n_procs or child.placement != self.placement:
                raise ConfigurationError(
                    f"child {key!r} disagrees on ranks/placement")
            # Children adopt the composite's address space and allocator so
            # global page numbers resolve identically everywhere (their own
            # were empty — children must be freshly constructed).
            if len(child.space) != 0:
                raise ConfigurationError(
                    f"child {key!r} already holds allocations")
            child.space = self.space
            child.allocator = self.allocator
            # Task bindings are shared: one registry for all systems.
            child._task_rank = self._task_rank
        self.children = dict(children)
        self.primary_key = primary
        self.primary = children[primary]
        self.default_policy: Policy = default_policy or (lambda nbytes, name: primary)
        self._region_child: Dict[int, GlobalMemorySystem] = {}
        #: per-allocation annotation consumed by the next allocate() call
        self._pending_system: Optional[str] = None

    # ------------------------------------------------------------ selection
    def child(self, key: str) -> GlobalMemorySystem:
        try:
            return self.children[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown memory system {key!r}; have {sorted(self.children)}") from None

    def allocate_on(self, system: str, nbytes: int, name: str = "",
                    distribution: Optional[Distribution] = None) -> Region:
        """Allocate a region explicitly placed on child ``system``."""
        self._pending_system = system
        try:
            return self.allocate(nbytes, name=name, distribution=distribution)
        finally:
            self._pending_system = None

    def make_array_on(self, system: str, shape: Sequence[int],
                      dtype=np.float64, name: str = "",
                      distribution: Optional[Distribution] = None):
        """Typed-array variant of :meth:`allocate_on`."""
        self._pending_system = system
        try:
            return self.make_array(shape, dtype=dtype, name=name,
                                   distribution=distribution)
        finally:
            self._pending_system = None

    def system_of(self, region: Region) -> str:
        child = self._owner(region)
        for key, candidate in self.children.items():
            if candidate is child:
                return key
        raise MemoryError_(f"{region!r} has no owning system")  # pragma: no cover

    # --------------------------------------------------------------- routing
    def _owner(self, region: Region) -> GlobalMemorySystem:
        try:
            return self._region_child[region.region_id]
        except KeyError:
            raise MemoryError_(
                f"{region!r} is not owned by any child system") from None

    def _setup_region(self, region: Region, distribution: Distribution) -> None:
        key = (self._pending_system if self._pending_system is not None
               else self.default_policy(region.size, region.name))
        child = self.child(key)
        child._setup_region(region, distribution)
        self._region_child[region.region_id] = child

    def _teardown_region(self, region: Region) -> None:
        child = self._region_child.pop(region.region_id)
        child._teardown_region(region)

    def _access_g(self, rank: int, region: Region, runs: List[Run],
                  write: bool):
        # Plain delegation: returning the child's generator lets the
        # caller's ``yield from`` drive it directly.
        return self._owner(region)._access_g(rank, region, runs, write)

    def refresh_runs_g(self, region: Region, runs: List[Run]):
        return self._owner(region).refresh_runs_g(region, runs)

    # ------------------------------------------------------------------ sync
    def _flush_secondaries_g(self):
        for key, child in self.children.items():
            if child is not self.primary:
                yield from child.sync_consistency_g()

    def lock_g(self, lock_id: int):
        return self.primary.lock_g(lock_id)

    def try_lock_g(self, lock_id: int):
        return self.primary.try_lock_g(lock_id)

    def unlock_g(self, lock_id: int):
        # Release consistency across ALL systems: secondary writes must be
        # visible before the lock can be observed released.
        yield from self._flush_secondaries_g()
        yield from self.primary.unlock_g(lock_id)

    def barrier_g(self):
        yield from self._flush_secondaries_g()
        yield from self.primary.barrier_g()

    def sync_consistency_g(self):
        for child in self.children.values():
            yield from child.sync_consistency_g()

    # ------------------------------------------------------------ reporting
    def consistency_model(self) -> str:
        return self.primary.consistency_model()

    def capabilities(self) -> frozenset:
        caps = {"composite", f"primary:{self.primary_key}"}
        for key, child in self.children.items():
            caps.add(f"system:{key}")
            caps |= set(child.capabilities())
        return frozenset(caps)

    def home_of(self, page: int, rank: Optional[int] = None) -> int:
        region = self.space.region_at(page * self.space.page_size)
        if region is None:
            raise ConfigurationError(f"page {page} is not globally allocated")
        return self._owner(region).home_of(page, rank)

    def stats(self, rank: Optional[int] = None) -> dict:
        """Merged per-rank statistics: common counters summed over children,
        plus a per-child breakdown."""
        if rank is None:
            rank = self.current_rank()
        merged: dict = {}
        for key, child in self.children.items():
            child_stats = child.stats(rank)
            merged[f"child:{key}"] = child_stats
            for counter, value in child_stats.items():
                if isinstance(value, (int, float)):
                    merged[counter] = merged.get(counter, 0) + value
        return merged

    def reset_stats(self) -> None:
        for child in self.children.values():
            child.reset_stats()
