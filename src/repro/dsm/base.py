"""Abstract global memory system — the architecture contract of §3.1.

A base architecture must provide, via this interface:

* **global allocation** (:meth:`GlobalMemorySystem.allocate` /
  :meth:`make_array`) with distribution annotations,
* **transparent access** (:meth:`access_runs`) — any task can read/write any
  global region; the substrate services protection faults and charges the
  corresponding costs,
* **synchronization** (:meth:`lock` / :meth:`unlock` / :meth:`barrier`)
  with the substrate's native consistency semantics attached,
* **consistency information and control** (:meth:`consistency_model`,
  :meth:`sync_consistency`),
* **capability probing** (:meth:`capabilities`) so the memory-management
  services can report what the subsystem supports,
* **statistics** (:meth:`stats` / :meth:`reset_stats`) feeding HAMSTER's
  monitoring services.

**Ranks vs nodes.** An SPMD job has ``n_procs`` *ranks*; each rank is placed
on a cluster *node*. On the Beowulf/SCI platforms the paper uses one rank per
node; on the SMP platform every rank shares node 0 (process parallelism on a
multiprocessor, §3.3). Tasks are bound to ranks with :meth:`bind_task`;
every access resolves the calling simulated process to its rank/node, which
is what lets application code use plain ``A[i, j]`` indexing with no
explicit placement plumbing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MemoryError_, SimulationError
from repro.machine.cluster import Cluster
from repro.memory.address_space import GlobalAddressSpace, Region
from repro.memory.allocator import GlobalAllocator
from repro.memory.layout import Distribution, cyclic
from repro.memory.shared_array import SharedArray

__all__ = ["GlobalMemorySystem", "AccessStats"]

Run = Tuple[int, int]


@dataclass
class AccessStats:
    """Per-rank access/protocol statistics (HAMSTER monitoring feed)."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_faults: int = 0
    write_faults: int = 0
    pages_fetched: int = 0
    twins_created: int = 0
    diffs_created: int = 0
    diff_bytes: int = 0
    write_notices_received: int = 0
    pages_invalidated: int = 0
    remote_reads: int = 0
    remote_writes: int = 0
    pages_mapped: int = 0
    lock_acquires: int = 0
    lock_releases: int = 0
    barriers: int = 0
    lock_wait_time: float = 0.0
    barrier_wait_time: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    def reset(self) -> None:
        for k, f in self.__dataclass_fields__.items():
            setattr(self, k, 0.0 if f.type == "float" else 0)


class GlobalMemorySystem(ABC):
    """Base class for the three DSM substrates."""

    #: substrate identifier reported by capability queries
    kind: str = "abstract"

    def __init__(self, cluster: Cluster, n_procs: Optional[int] = None,
                 placement: Optional[Sequence[int]] = None) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.params = cluster.params
        self.n_procs = n_procs if n_procs is not None else cluster.n_nodes
        if self.n_procs < 1:
            raise ConfigurationError("need at least one rank")
        if placement is None:
            if cluster.n_nodes == 1:
                placement = [0] * self.n_procs
            elif self.n_procs <= cluster.n_nodes:
                placement = list(range(self.n_procs))
            else:
                placement = [r % cluster.n_nodes for r in range(self.n_procs)]
        self.placement = list(placement)
        if len(self.placement) != self.n_procs:
            raise ConfigurationError("placement must have one node per rank")
        for n in self.placement:
            cluster.node(n)  # validates
        self.space = GlobalAddressSpace(page_size=cluster.params.page_size)
        self.allocator = GlobalAllocator(self.space)
        self._task_rank: Dict[int, int] = {}  # SimProcess.pid -> rank
        self.rank_stats: List[AccessStats] = [AccessStats() for _ in range(self.n_procs)]
        self._arrays: Dict[int, SharedArray] = {}  # region_id -> array

    # ----------------------------------------------------------- task bind
    def bind_task(self, proc, rank: int) -> None:
        """Associate a simulated process with an SPMD rank."""
        if not (0 <= rank < self.n_procs):
            raise ConfigurationError(f"rank {rank} out of range [0, {self.n_procs})")
        self._task_rank[proc.pid] = rank

    def unbind_task(self, proc) -> None:
        self._task_rank.pop(proc.pid, None)

    def current_rank(self) -> int:
        proc = self.engine.require_process()
        try:
            return self._task_rank[proc.pid]
        except KeyError:
            raise SimulationError(
                f"{proc} is not bound to a rank (TaskMgmt/bind_task first)") from None

    def node_of(self, rank: int) -> int:
        return self.placement[rank]

    def current_node(self):
        """The :class:`~repro.machine.node.Node` the calling task runs on."""
        return self.cluster.node(self.node_of(self.current_rank()))

    # ------------------------------------------------------------ allocate
    def allocate(self, nbytes: int, name: str = "",
                 distribution: Optional[Distribution] = None) -> Region:
        """Globally allocate ``nbytes`` of shared memory.

        Collectivity policy (whether all ranks must call this together)
        belongs to the programming-model layers, not here.
        """
        region = self.allocator.alloc(nbytes, name)
        self._setup_region(region, distribution or self.default_distribution())
        return region

    def make_array(self, shape: Sequence[int], dtype: Any = np.float64,
                   name: str = "",
                   distribution: Optional[Distribution] = None) -> SharedArray:
        """Allocate a region and wrap it in a typed :class:`SharedArray`."""
        shape = tuple(int(s) for s in shape)
        nbytes = int(np.prod(shape)) * np.dtype(dtype).itemsize if shape else np.dtype(dtype).itemsize
        region = self.allocate(max(nbytes, 1), name=name, distribution=distribution)
        arr = SharedArray(self, region, shape, dtype, name=name)
        self._arrays[region.region_id] = arr
        return arr

    def free(self, region: Region) -> None:
        """Release a global region."""
        self._teardown_region(region)
        self._arrays.pop(region.region_id, None)
        self.allocator.free(region)

    def array_for(self, region: Region) -> SharedArray:
        try:
            return self._arrays[region.region_id]
        except KeyError:
            raise MemoryError_(f"no shared array bound to {region!r}") from None

    def default_distribution(self) -> Distribution:
        return cyclic()

    # -------------------------------------------------------------- access
    # Every blocking operation of the contract is implemented ONCE, as a
    # generator kernel (the ``*_g`` method) following the yield-point
    # contract of :mod:`repro.sim.process`. The blocking method is a
    # one-line trampoline over the kernel, so thread-backed and stackless
    # processes execute identical protocol code.
    def access_runs(self, region: Region, runs: List[Run], write: bool) -> np.ndarray:
        """Service an access from the *current task* and return the buffer
        holding this rank's view of ``region``.

        Concrete substrates implement :meth:`_access_g`; this wrapper
        resolves the rank and maintains the common statistics.
        """
        return self.engine.kernel(self.access_runs_g(region, runs, write))

    def access_runs_g(self, region: Region, runs: List[Run], write: bool):
        """Generator kernel of :meth:`access_runs` (``yield from`` it)."""
        rank = self.current_rank()
        nbytes = sum(ln for _, ln in runs)
        st = self.rank_stats[rank]
        if write:
            st.writes += 1
            st.bytes_written += nbytes
        else:
            st.reads += 1
            st.bytes_read += nbytes
        return (yield from self._access_g(rank, region, runs, write))

    def lock(self, lock_id: int) -> None:
        """Acquire global lock ``lock_id`` with the substrate's acquire
        consistency semantics."""
        return self.engine.kernel(self.lock_g(lock_id))

    def unlock(self, lock_id: int) -> None:
        """Release global lock ``lock_id`` with release semantics."""
        return self.engine.kernel(self.unlock_g(lock_id))

    def try_lock(self, lock_id: int) -> bool:
        """Non-blocking acquire attempt; True on success (with acquire
        semantics), False if the lock is held."""
        return self.engine.kernel(self.try_lock_g(lock_id))

    def barrier(self) -> None:
        """Global barrier across all ranks, with barrier consistency."""
        return self.engine.kernel(self.barrier_g())

    def refresh_runs(self, region: Region, runs: List[Run]) -> None:
        """Drop any stale cached copies of the pages under ``runs`` so the
        next read observes the home's current data. One-sided (put/get)
        models need this: a ``get`` must see remote puts without a lock or
        barrier in between. No-op on substrates without remote caching."""
        return self.engine.kernel(self.refresh_runs_g(region, runs))

    def sync_consistency(self) -> None:
        """Make all of the calling rank's writes globally visible (a full
        flush — the strongest, model-agnostic consistency action).
        Hardware-coherent substrates make this a no-op."""
        return self.engine.kernel(self.sync_consistency_g())

    # ------------------------------------------------------------ abstract
    @abstractmethod
    def _setup_region(self, region: Region, distribution: Distribution) -> None:
        """Create backing storage / page metadata for a new region."""

    @abstractmethod
    def _teardown_region(self, region: Region) -> None:
        """Drop storage/metadata for a freed region."""

    @abstractmethod
    def _access_g(self, rank: int, region: Region, runs: List[Run],
                  write: bool):
        """Generator kernel servicing the access; returns (via
        ``StopIteration``) the rank's view buffer for the region."""

    @abstractmethod
    def lock_g(self, lock_id: int):
        """Generator kernel of :meth:`lock`."""

    @abstractmethod
    def unlock_g(self, lock_id: int):
        """Generator kernel of :meth:`unlock`."""

    @abstractmethod
    def try_lock_g(self, lock_id: int):
        """Generator kernel of :meth:`try_lock`."""

    @abstractmethod
    def barrier_g(self):
        """Generator kernel of :meth:`barrier`."""

    @abstractmethod
    def consistency_model(self) -> str:
        """Name of the substrate's native consistency model."""

    @abstractmethod
    def capabilities(self) -> frozenset:
        """Feature probe used by the Memory Management module (§4.2)."""

    def refresh_runs_g(self, region: Region, runs: List[Run]):
        """Generator kernel of :meth:`refresh_runs` (default: no-op)."""
        return
        yield  # unreachable; makes this a generator function

    # --------------------------------------------------------- consistency
    def sync_consistency_g(self):
        """Generator kernel of :meth:`sync_consistency` (default: no-op)."""
        return
        yield  # unreachable; makes this a generator function

    # ------------------------------------------------------------ statistics
    def stats(self, rank: Optional[int] = None) -> Dict[str, Any]:
        if rank is None:
            rank = self.current_rank()
        return self.rank_stats[rank].as_dict()

    def reset_stats(self) -> None:
        for st in self.rank_stats:
            st.reset()

    # ------------------------------------------------------------- helpers
    def _page_spans(self, region: Region, runs: List[Run]) -> List[Tuple[int, int]]:
        """Sorted, disjoint inclusive page spans touched by ``runs``.

        One ``(first, last)`` pair per maximal contiguous page extent:
        adjacent and overlapping runs coalesce, so a bulk access costs two
        integers of metadata instead of one entry per page. Substrates walk
        these spans and expand to individual pages only across
        protection-state boundaries (see
        :meth:`~repro.memory.page.PageTable.faulting_in_spans`).
        """
        spans: List[Tuple[int, int]] = []
        for off, ln in runs:  # runs are sorted and merged by SharedArray
            span = region.span_for(off, ln)
            if span is None:
                continue
            first, last = span
            if spans and first <= spans[-1][1] + 1:
                if last > spans[-1][1]:
                    spans[-1] = (spans[-1][0], last)
            else:
                spans.append((first, last))
        return spans

    def _sharing_record_access(self, rank: int, region: Region,
                               runs: List[Run], write: bool) -> None:
        """Feed the engine's sharing recorder the per-page sub-ranges of
        ``runs`` (page-local ``[lo, hi)`` byte extents — the span
        information the false-sharing detector intersects across ranks).
        Host-side only; callers guard on ``engine.sharing.enabled``."""
        sharing = self.engine.sharing
        psize = self.space.page_size
        for off, ln in runs:
            gaddr = region.gaddr + off
            end = gaddr + ln
            while gaddr < end:
                page = gaddr // psize
                page_base = page * psize
                chunk = min(end, page_base + psize) - gaddr
                lo = gaddr - page_base
                sharing.access(rank, page, lo, lo + chunk, write)
                gaddr += chunk

    def _pages_touched(self, region: Region, runs: List[Run]) -> List[int]:
        """Sorted, deduplicated global page numbers touched by ``runs``."""
        pages: List[int] = []
        for first, last in self._page_spans(region, runs):
            pages.extend(range(first, last + 1))
        return pages
