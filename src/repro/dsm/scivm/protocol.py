"""Hybrid DSM protocol: software management, hardware data path.

Every page physically exists exactly once, in its home rank's node memory;
the union of the homes *is* the global memory (one backing buffer per region
in the simulation). An access from the home rank is a local memory access;
from any other rank it becomes SCI remote transactions — after a one-time
software mapping step (:mod:`repro.dsm.scivm.mapping`).

Consistency is relaxed (release consistency): posted remote writes sit in
the adapter's write buffer until a consistency point (lock release, barrier,
explicit flush) drains it. Since there is no remote caching in this model,
no invalidations are ever needed — the consistency cost is a (cheap) flush.

Locks and barriers ride on SCI remote atomic transactions against node 0 /
the lock's manager node, reproducing the much lower synchronization times
the paper observes for the hybrid system (Fig. 3 "LU bar").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dsm.base import GlobalMemorySystem, Run
from repro.dsm.scivm.mapping import RemoteMapper
from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.memory.address_space import Region
from repro.memory.layout import Distribution
from repro.sim.resources import SimBarrier, SimLock

__all__ = ["SciVmSystem"]


class SciVmSystem(GlobalMemorySystem):
    """SCI-VM-style hybrid DSM."""

    kind = "scivm"

    def __init__(self, cluster: Cluster, fabric=None,
                 n_procs: Optional[int] = None,
                 placement: Optional[Sequence[int]] = None,
                 att_entries: int = 16384) -> None:
        super().__init__(cluster, n_procs=n_procs, placement=placement)
        if not cluster.has_sci():
            raise ConfigurationError("SCI-VM needs an SCI interconnect")
        self.sci = cluster.sci
        # fabric accepted for interface symmetry (config/startup messaging
        # uses sockets in the real SCI-VM; all application data is hardware).
        self.fabric = fabric
        self._buffers: Dict[int, np.ndarray] = {}       # region_id -> memory
        self._home: Dict[int, int] = {}                 # page -> home rank
        self._lazy: Dict[int, Optional[int]] = {}       # first-touch pages
        self._mappers: List[RemoteMapper] = [
            RemoteMapper(self.sci, r, att_entries) for r in range(self.n_procs)]
        self._locks: Dict[int, SimLock] = {}
        self._barrier = SimBarrier(self.engine, self.n_procs, name="scivm.barrier")

    # --------------------------------------------------------------- regions
    def _setup_region(self, region: Region, distribution: Distribution) -> None:
        self._buffers[region.region_id] = np.zeros(region.size, dtype=np.uint8)
        homes = distribution.assign(region.n_pages, self.n_procs)
        for i, page in enumerate(region.pages()):
            if homes[i] is None:
                self._lazy[page] = None
            else:
                self._home[page] = homes[i]

    def _teardown_region(self, region: Region) -> None:
        self._buffers.pop(region.region_id, None)
        for page in region.pages():
            self._home.pop(page, None)
            self._lazy.pop(page, None)
            for mapper in self._mappers:
                mapper.unmap(page)

    def home_of(self, page: int, rank: Optional[int] = None) -> int:
        h = self._home.get(page)
        if h is not None:
            return h
        if page not in self._lazy:
            raise ConfigurationError(f"page {page} is not globally allocated")
        # First touch: the distributed memory manager assigns the page to
        # the toucher (software management — one of the hybrid's "SW-DSM
        # like" aspects; the assignment itself is a metadata update).
        if rank is None:
            rank = self.current_rank()
        self._home[page] = rank
        del self._lazy[page]
        return rank

    # ---------------------------------------------------------------- access
    def _access_g(self, rank: int, region: Region, runs: List[Run],
                  write: bool):
        node = self.cluster.node(self.node_of(rank))
        mapper = self._mappers[rank]
        st = self.rank_stats[rank]
        local_bytes = 0
        # Per-page byte attribution: split each run at page boundaries.
        # Remote transactions stay per page chunk (that is how the hardware
        # issues them, and what the cost model charges); the span treatment
        # here is host-side only — resolved homes come from one dict probe
        # per page, falling back to the first-touch path on a miss.
        psize = self.space.page_size
        home_map = self._home
        placement = self.placement
        src_node = placement[rank]
        sharing = self.engine.sharing
        if sharing.enabled:
            self._sharing_record_access(rank, region, runs, write)
        for off, ln in runs:
            gaddr = region.gaddr + off
            end = gaddr + ln
            while gaddr < end:
                page = gaddr // psize
                chunk = min(end, (page + 1) * psize) - gaddr
                home = home_map.get(page)
                if home is None:
                    home = self.home_of(page, rank)
                if home == rank:
                    local_bytes += chunk
                else:
                    if (yield from mapper.ensure_mapped_g(page)):
                        st.pages_mapped += 1
                    if write:
                        st.remote_writes += 1
                        yield from self.sci.remote_write_g(
                            chunk, src=src_node, dst=placement[home])
                    else:
                        st.remote_reads += 1
                        yield from self.sci.remote_read_g(
                            chunk, src=src_node, dst=placement[home])
                    if sharing.enabled:
                        sharing.remote(rank, page, home, write, chunk,
                                       self.engine.now)
                gaddr += chunk
        if local_bytes:
            yield from node.mem_touch_g(local_bytes)
        return self._buffers[region.region_id]

    # ------------------------------------------------------------------ sync
    def _lock_for(self, lock_id: int) -> SimLock:
        if lock_id not in self._locks:
            self._locks[lock_id] = SimLock(self.engine, name=f"scivm.lock{lock_id}")
        return self._locks[lock_id]

    def lock_g(self, lock_id: int):
        rank = self.current_rank()
        st = self.rank_stats[rank]
        st.lock_acquires += 1
        t0 = self.engine.now
        # Ticket acquisition: one remote atomic against the lock's manager
        # node; contended waiters poll the grant word (one more read when
        # woken).
        manager_node = self.node_of(lock_id % self.n_procs)
        yield from self.sci.remote_atomic_g(src=self.node_of(rank),
                                            dst=manager_node)
        lk = self._lock_for(lock_id)
        contended = lk.locked
        yield from lk.acquire_g()
        if contended:
            yield from self.sci.remote_read_g(8)
        st.lock_wait_time += self.engine.now - t0

    def try_lock_g(self, lock_id: int):
        rank = self.current_rank()
        # One compare&swap transaction either way.
        yield from self.sci.remote_atomic_g()
        lk = self._lock_for(lock_id)
        if lk.locked:
            return False
        yield from lk.acquire_g()
        self.rank_stats[rank].lock_acquires += 1
        return True

    def unlock_g(self, lock_id: int):
        rank = self.current_rank()
        self.rank_stats[rank].lock_releases += 1
        # Release consistency: drain the posted-write buffer, then release.
        yield from self.sci.flush_write_buffer_g()
        yield from self.sci.remote_atomic_g()
        self._lock_for(lock_id).release()

    def barrier_g(self):
        rank = self.current_rank()
        st = self.rank_stats[rank]
        st.barriers += 1
        t0 = self.engine.now
        yield from self.sci.flush_write_buffer_g()
        yield from self.sci.remote_atomic_g(src=self.node_of(rank),
                                            dst=self.node_of(0))  # arrival fetch&inc
        yield from self._barrier.wait_g()
        yield from self.sci.remote_read_g(8)   # observe the release word
        st.barrier_wait_time += self.engine.now - t0

    # ------------------------------------------------------------ consistency
    def sync_consistency_g(self):
        yield from self.sci.flush_write_buffer_g()

    def consistency_model(self) -> str:
        return "release"

    def capabilities(self) -> frozenset:
        return frozenset({
            "hybrid_dsm",
            "hardware_data_path",
            "remote_put_get",
            "distribution:block",
            "distribution:cyclic",
            "distribution:single_home",
            "distribution:explicit",
            "distribution:first_touch",
            "consistency:release",
            "consistency:scope",     # stronger-than-needed mapping is fine
        })

    # ---------------------------------------------------------------- debug
    def is_mapped(self, rank: int, page: int) -> bool:
        return self._mappers[rank].is_mapped(page)
