"""SCI-VM-style hybrid DSM (hardware data path, software management).

The intermediate design point of §3.2: a *shared memory cluster* whose SAN
(SCI) offers remote memory read/write transactions. Memory management —
global allocation, page placement, the kernel-level remote mapping — stays
in software (like a SW-DSM), but every data access maps directly onto
hardware transactions with **no software protocol on the data path**: no
page faults after mapping, no twins, no diffs.

Consequences the evaluation measures:

* write-only initialization is cheap (posted remote writes stream at wire
  bandwidth; a SW-DSM pays fetch+twin+diff for the same pattern — Fig. 3 LU),
* barrier/lock costs collapse to a few remote atomic transactions,
* every remote access pays SAN latency, so locality (home placement) still
  matters, just less catastrophically than under page faulting.
"""

from repro.dsm.scivm.protocol import SciVmSystem

__all__ = ["SciVmSystem"]
