"""Kernel mapping component of the hybrid DSM.

The SCI-VM extends the OS's local memory management to remote pages: before
a node can issue hardware transactions against a remote page, a privileged
kernel module must program the SCI adapter's address translation table and
install the mapping in the local page tables (§2: "the only exception is a
kernel-level component..."). The mapping also implements protection: a page
can be mapped read-only or read-write, and unmapped pages are inaccessible.

:class:`RemoteMapper` models this: a per-rank table of mapped pages, a
one-time per-page mapping cost, and an ATT capacity with FIFO eviction
(real SCI adapters had a limited number of translation entries).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict

from repro.errors import ProtectionError

__all__ = ["RemoteMapper"]


class RemoteMapper:
    """Per-rank remote page mapping table with bounded ATT capacity."""

    def __init__(self, sci, rank: int, att_entries: int = 16384) -> None:
        self.sci = sci
        self.rank = rank
        self.att_entries = att_entries
        #: mapped page -> True; ordered for FIFO eviction
        self._mapped: "OrderedDict[int, bool]" = OrderedDict()
        # ---------------------------------------------------- statistics
        self.maps = 0
        self.evictions = 0

    def is_mapped(self, page: int) -> bool:
        return page in self._mapped

    def ensure_mapped(self, page: int) -> bool:
        """Map ``page`` if needed; returns True when a new mapping was
        created (and its kernel cost charged)."""
        return self.sci.engine.kernel(self.ensure_mapped_g(page))

    def ensure_mapped_g(self, page: int):
        """Generator kernel of :meth:`ensure_mapped` (``yield from`` it)."""
        if page in self._mapped:
            return False
        if len(self._mapped) >= self.att_entries:
            self._mapped.popitem(last=False)
            self.evictions += 1
        self._mapped[page] = True
        self.maps += 1
        yield from self.sci.map_pages_g(1)
        return True

    def unmap(self, page: int) -> None:
        self._mapped.pop(page, None)

    def unmap_all(self) -> None:
        self._mapped.clear()

    def require_mapped(self, page: int) -> None:
        if page not in self._mapped:
            raise ProtectionError(
                f"rank {self.rank}: hardware access to unmapped page {page}")
