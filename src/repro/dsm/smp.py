"""Hardware-coherent shared memory (the tightly coupled platform, §3.2).

All ranks live on one UMA node. There is one physical copy of every region;
accesses charge memory-bus traffic (the bus serializes, so concurrent ranks
contend — the effect that costs the SMP the MatMult comparison in Figure 4).
Coherence is by hardware: no twins, diffs, or invalidations, and consistency
operations are (almost) free — the native model is processor consistency
(stronger than anything the programming models require, §4.5).

Synchronization maps to native OS primitives (futex-class costs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dsm.base import GlobalMemorySystem, Run
from repro.errors import ConfigurationError
from repro.machine.cluster import Cluster
from repro.memory.address_space import Region
from repro.memory.layout import Distribution, single_home
from repro.sim.resources import SimBarrier, SimLock

__all__ = ["SmpMemorySystem"]


class SmpMemorySystem(GlobalMemorySystem):
    """UMA shared memory with hardware cache coherence."""

    kind = "smp"

    def __init__(self, cluster: Cluster, n_procs: Optional[int] = None,
                 placement: Optional[Sequence[int]] = None) -> None:
        if cluster.n_nodes != 1:
            raise ConfigurationError(
                "SmpMemorySystem runs on a single UMA node "
                f"(cluster has {cluster.n_nodes})")
        if n_procs is None:
            n_procs = cluster.node(0).n_cpus
        if n_procs > cluster.node(0).n_cpus:
            raise ConfigurationError(
                f"{n_procs} ranks exceed the node's {cluster.node(0).n_cpus} CPUs")
        super().__init__(cluster, n_procs=n_procs, placement=placement)
        self._buffers: Dict[int, np.ndarray] = {}   # region_id -> bytes
        self._locks: Dict[int, SimLock] = {}
        self._barrier = SimBarrier(self.engine, self.n_procs, name="smp.barrier")

    # -------------------------------------------------------------- regions
    def default_distribution(self) -> Distribution:
        return single_home(0)  # placement is moot on UMA; everything is local

    def _setup_region(self, region: Region, distribution: Distribution) -> None:
        # Distribution annotations are accepted (capability: ignored on UMA —
        # there is one memory), matching HAMSTER's "as long as the subsystem
        # can accommodate the parameters" contract.
        self._buffers[region.region_id] = np.zeros(region.size, dtype=np.uint8)

    def _teardown_region(self, region: Region) -> None:
        self._buffers.pop(region.region_id, None)

    # --------------------------------------------------------------- access
    def _access_g(self, rank: int, region: Region, runs: List[Run],
                  write: bool):
        # UMA is the degenerate span case: every access is one local span
        # with no protection states to expand at, so the whole run list
        # collapses to a single bulk bus charge.
        node = self.cluster.node(self.node_of(rank))
        nbytes = sum(ln for _, ln in runs)
        yield from node.mem_touch_g(nbytes)  # serialized on the shared bus
        if self.engine.sharing.enabled:
            # No protocol events on UMA (hardware coherence), but per-page
            # access counts and write ranges still locate bus hot spots.
            self._sharing_record_access(rank, region, runs, write)
        return self._buffers[region.region_id]

    # ------------------------------------------------------------------ sync
    def _lock_for(self, lock_id: int) -> SimLock:
        if lock_id not in self._locks:
            self._locks[lock_id] = SimLock(self.engine, name=f"smp.lock{lock_id}")
        return self._locks[lock_id]

    def lock_g(self, lock_id: int):
        rank = self.current_rank()
        node = self.cluster.node(self.node_of(rank))
        yield from node.cpu_time_g(self.params.os_sync_cost)
        t0 = self.engine.now
        yield from self._lock_for(lock_id).acquire_g()
        st = self.rank_stats[rank]
        st.lock_acquires += 1
        st.lock_wait_time += self.engine.now - t0

    def try_lock_g(self, lock_id: int):
        rank = self.current_rank()
        node = self.cluster.node(self.node_of(rank))
        yield from node.cpu_time_g(self.params.os_sync_cost)
        lk = self._lock_for(lock_id)
        if lk.locked:
            return False
        yield from lk.acquire_g()
        self.rank_stats[rank].lock_acquires += 1
        return True

    def unlock_g(self, lock_id: int):
        rank = self.current_rank()
        node = self.cluster.node(self.node_of(rank))
        yield from node.cpu_time_g(self.params.os_sync_cost)
        self._lock_for(lock_id).release()
        self.rank_stats[rank].lock_releases += 1

    def barrier_g(self):
        rank = self.current_rank()
        node = self.cluster.node(self.node_of(rank))
        yield from node.cpu_time_g(self.params.os_sync_cost)
        st = self.rank_stats[rank]
        st.barriers += 1
        t0 = self.engine.now
        yield from self._barrier.wait_g()
        st.barrier_wait_time += self.engine.now - t0

    def home_of(self, page: int, rank: Optional[int] = None) -> int:
        """Every page is local on UMA; report rank 0 as the nominal home."""
        return 0

    # ----------------------------------------------------------- properties
    def consistency_model(self) -> str:
        return "processor"  # hardware model of the SMP (§4.5)

    def capabilities(self) -> frozenset:
        return frozenset({
            "hardware_coherence",
            "uniform_access",
            "consistency:processor",
            "consistency:release",   # weaker models map onto stronger (§4.5)
            "consistency:scope",
            "consistency:entry",
            "native_threads",
        })

    # sync_consistency: hardware keeps caches coherent; a memory fence is
    # ~free at this cost-model granularity — the base no-op kernel applies.
