"""DSM substrates: the three base architectures of §3.2.

* :mod:`repro.dsm.smp` — hardware-coherent shared memory (tightly coupled),
* :mod:`repro.dsm.jiajia` — JiaJia-style software DSM over Ethernet
  (loosely coupled; home-based scope consistency),
* :mod:`repro.dsm.scivm` — SCI-VM-style hybrid DSM over SCI remote-memory
  hardware (the intermediate design point).

All three implement :class:`repro.dsm.base.GlobalMemorySystem`, the global
memory abstraction HAMSTER requires of a base architecture — global
allocation, transparent read/write, synchronization, and consistency
control — so the HAMSTER core and every programming model run unmodified on
each.
"""

from repro.dsm.base import AccessStats, GlobalMemorySystem
from repro.dsm.smp import SmpMemorySystem


def make_dsm(kind: str, cluster, fabric=None, **kw):
    """Factory used by the cluster-configuration machinery.

    ``kind`` is one of ``"smp"``, ``"jiajia"`` (SW-DSM), ``"scivm"``
    (hybrid DSM).
    """
    from repro.dsm.jiajia import JiaJiaSystem
    from repro.dsm.scivm import SciVmSystem

    kinds = {"smp": SmpMemorySystem, "jiajia": JiaJiaSystem, "scivm": SciVmSystem}
    try:
        cls = kinds[kind]
    except KeyError:
        from repro.errors import ConfigurationError

        raise ConfigurationError(
            f"unknown DSM kind {kind!r}; expected one of {sorted(kinds)}") from None
    if kind == "smp":
        return cls(cluster, **kw)
    return cls(cluster, fabric=fabric, **kw)


__all__ = ["GlobalMemorySystem", "AccessStats", "SmpMemorySystem", "make_dsm"]
