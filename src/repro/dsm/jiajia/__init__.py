"""JiaJia-style software DSM (home-based scope consistency).

Reimplementation of the SW-DSM the paper integrates as its loosely-coupled
substrate (§3.2): Hu/Shi/Tang's JiaJia. Protocol features reproduced:

* **home-based** pages — every page has a home rank whose copy is
  authoritative; modifications travel home as *diffs* at release time,
* **multiple-writer** support via twins + run-length diffs (false sharing
  does not ping-pong pages),
* **scope consistency** — write notices are bound to the lock under which
  the writes happened; acquiring that lock invalidates exactly the pages
  its previous critical sections modified, while barriers globalize all
  notices,
* distributed lock managers (lock id → manager rank) and a centralized
  barrier manager,
* per-rank protocol statistics (JiaJia's ``jiastat``-style counters).

The protocol moves *real data*: fetches copy page bytes, diffs are computed
from real twins and applied at real homes — tests verify that benchmark
results computed through the DSM equal sequential numpy results.
"""

from repro.dsm.jiajia.protocol import JiaJiaSystem
from repro.dsm.jiajia.diffs import Diff, apply_diff, diff_wire_size, make_diff

__all__ = ["JiaJiaSystem", "Diff", "make_diff", "apply_diff", "diff_wire_size"]
