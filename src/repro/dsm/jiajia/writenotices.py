"""Write notices and scope bookkeeping.

A write notice records "page P was modified by rank R in interval seq". In
scope consistency (JiaJia's model), notices are *bound to the lock* whose
critical section produced them: acquiring lock L delivers only L's notices;
the barrier is the global scope that delivers everyone's notices to
everybody.

:class:`NoticeLog` is the manager-side, monotonically growing log with
sequence numbers; clients remember the last sequence they have seen per
scope and receive only the tail — JiaJia's incremental write-notice
propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["WriteNotice", "NoticeLog", "NOTICE_WIRE_BYTES"]

#: wire size of one notice (page number + writer rank)
NOTICE_WIRE_BYTES = 10


@dataclass(frozen=True)
class WriteNotice:
    """One page-modification record."""

    page: int
    writer: int


class NoticeLog:
    """Append-only write-notice log with sequence-number cursors."""

    def __init__(self) -> None:
        self._log: List[WriteNotice] = []

    @property
    def seq(self) -> int:
        """Current end-of-log sequence number."""
        return len(self._log)

    def append(self, notices: List[WriteNotice]) -> int:
        """Append notices; returns the new sequence number."""
        self._log.extend(notices)
        return self.seq

    def since(self, cursor: int) -> Tuple[List[WriteNotice], int]:
        """Notices after ``cursor`` plus the new cursor."""
        if cursor < 0:
            cursor = 0
        return list(self._log[cursor:]), self.seq

    def __len__(self) -> int:
        return len(self._log)
