"""Home-based scope-consistency protocol (the JiaJia reimplementation).

Data layout
-----------
Every rank lazily owns a full-size local buffer per region. The *home* rank's
buffer holds the authoritative copy of each of its pages; other ranks hold
cached copies guarded by a per-rank :class:`~repro.memory.page.PageTable`.

Access path (the simulated MMU + SIGSEGV handler)
-------------------------------------------------
``_access`` computes the faulting pages for the touched page set.

* read fault on a remote-home page → ``getpage`` RPC to the home (one round
  trip *per page*, as on real hardware where the CPU faults page by page);
  the reply bytes are copied into the local buffer, state → READ_ONLY.
* write fault → fetch if invalid, then **twin** the page, mark it dirty,
  state → READ_WRITE. Write faults on own-home pages skip twin/fetch (home
  copies are authoritative) but are still recorded as dirty for notices.

Synchronization path
--------------------
``unlock`` and ``barrier`` *flush*: for every dirty remote-home page a diff
(twin vs current) is computed and shipped to its home (batched per home,
acknowledged before the release proceeds — home-based eager release).
Write notices for all flushed pages are then bound to the lock's scope
(unlock) or globalized (barrier). ``lock`` delivers the scope's unseen
notices and invalidates exactly those cached pages — scope consistency.

Lock managers are distributed (lock id mod n_procs); the barrier manager is
rank 0. Manager traffic uses the messaging fabric, so the native-vs-HAMSTER
messaging-stack cost difference (§3.3) applies to protocol traffic exactly
as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.dsm.base import GlobalMemorySystem, Run
from repro.dsm.jiajia.diffs import Diff, apply_diff, diff_wire_size, make_diff
from repro.dsm.jiajia.writenotices import NOTICE_WIRE_BYTES, NoticeLog, WriteNotice
from repro.errors import ConfigurationError, SynchronizationError
from repro.machine.cluster import Cluster
from repro.memory.address_space import Region
from repro.memory.layout import Distribution
from repro.memory.page import PageState, PageTable
from repro.msg.active_messages import Reply
from repro.msg.coalesce import MessagingFabric
from repro.sim.process import PARK

__all__ = ["JiaJiaSystem"]

PAGE_WIRE_HEADER = 16


class _LocalWaiter:
    """A same-node lock request parked without a network round trip."""

    __slots__ = ("proc", "rank", "cursor", "granted", "notices", "seq")

    def __init__(self, proc, rank: int, cursor: int) -> None:
        self.proc = proc
        self.rank = rank
        self.cursor = cursor
        self.granted = False
        self.notices: List[WriteNotice] = []
        self.seq = 0


@dataclass
class _LockState:
    """Manager-side state of one global lock."""

    holder: Optional[int] = None
    queue: List[object] = field(default_factory=list)  # Message | _LocalWaiter
    log: NoticeLog = field(default_factory=NoticeLog)


class JiaJiaSystem(GlobalMemorySystem):
    """JiaJia-style SW-DSM over the message fabric."""

    kind = "jiajia"

    #: consecutive dirty intervals before a home page enters the adaptive
    #: single-writer assumption (write detection disabled)
    ASSUME_STREAK = 3
    #: intervals an assumed page stays undetected before one revalidation
    ASSUME_REVALIDATE = 8

    def __init__(self, cluster: Cluster, fabric: Optional[MessagingFabric] = None,
                 n_procs: Optional[int] = None,
                 placement: Optional[Sequence[int]] = None,
                 scope_consistency: bool = True) -> None:
        super().__init__(cluster, n_procs=n_procs, placement=placement)
        if cluster.network is None:
            raise ConfigurationError("JiaJia needs a network (Beowulf/SCI cluster)")
        self.fabric = fabric if fabric is not None else MessagingFabric(
            cluster, integrated=cluster.params.coalesce_messaging)
        self.chan = self.fabric.channel("jiajia")
        #: scope consistency (JiaJia) vs lazy-release-style global notice
        #: delivery on every acquire (the consistency ablation)
        self.scope_consistency = scope_consistency

        # ----------------------------------------------------- per-rank state
        self._buffers: Dict[Tuple[int, int], np.ndarray] = {}
        self._ptables: List[PageTable] = [PageTable(f"jj.pt{r}")
                                          for r in range(self.n_procs)]
        self._twins: List[Dict[int, np.ndarray]] = [dict() for _ in range(self.n_procs)]
        self._dirty: List[Dict[int, Region]] = [dict() for _ in range(self.n_procs)]
        #: notices generated since this rank's last barrier (merged there)
        self._history: List[List[WriteNotice]] = [[] for _ in range(self.n_procs)]
        #: notices generated since this rank's last *release* — an explicit
        #: fence inside a critical section must still bind its notices to
        #: the lock's scope at the next unlock
        self._pending: List[List[WriteNotice]] = [[] for _ in range(self.n_procs)]
        #: per-rank, per-lock notice cursors
        self._cursors: List[Dict[int, int]] = [dict() for _ in range(self.n_procs)]
        #: adaptive write detection: consecutive-dirty streaks and the set
        #: of home pages currently assumed dirty (page -> intervals held)
        self._dirty_streak: List[Dict[int, int]] = [dict() for _ in range(self.n_procs)]
        self._assumed: List[Dict[int, int]] = [dict() for _ in range(self.n_procs)]

        # ------------------------------------------------------ manager state
        self._locks: Dict[int, _LockState] = {}
        self._barrier_round: List[object] = []      # Message | _LocalWaiter
        self._barrier_notices: List[WriteNotice] = []
        self._barrier_generation = 0

        # ------------------------------------------------------- home mapping
        self._home: Dict[int, int] = {}             # page -> home rank
        self._lazy_pages: Set[int] = set()          # pages with first-touch homes
        self._home_cache: List[Dict[int, int]] = [dict() for _ in range(self.n_procs)]

        self._install_handlers()

        if self.engine.sharing.enabled:
            # Sharing diagnosis: observe every protection transition (the
            # invalidation/downgrade stream) per rank. Attached only when
            # enabled, so the default path keeps the None fast check.
            sharing = self.engine.sharing
            engine = self.engine
            for r, pt in enumerate(self._ptables):
                pt.on_transition = (
                    lambda page, old, new, _r=r:
                    sharing.transition(_r, page, old, new, engine.now))

    # ------------------------------------------------------------- handlers
    def _install_handlers(self) -> None:
        self.chan.register_all("getpage", lambda nid: self._h_getpage)
        self.chan.register_all("putdiffs", lambda nid: self._h_putdiffs)
        self.chan.register_all("gethome", lambda nid: self._h_gethome)
        self.chan.register_all("lock.acq", lambda nid: self._h_lock_acq)
        self.chan.register_all("lock.tryacq", lambda nid: self._h_lock_tryacq)
        self.chan.register_all("lock.rel", lambda nid: self._h_lock_rel)
        self.chan.register_all("barrier.arrive", lambda nid: self._h_barrier_arrive)

    # --------------------------------------------------------------- regions
    def _setup_region(self, region: Region, distribution: Distribution) -> None:
        homes = distribution.assign(region.n_pages, self.n_procs)
        for i, page in enumerate(region.pages()):
            if homes[i] is None:
                self._lazy_pages.add(page)
            else:
                self._home[page] = homes[i]

    def _teardown_region(self, region: Region) -> None:
        for rank in range(self.n_procs):
            self._buffers.pop((rank, region.region_id), None)
            for page in region.pages():
                self._ptables[rank].invalidate(page)
                self._twins[rank].pop(page, None)
                self._dirty[rank].pop(page, None)
                self._home_cache[rank].pop(page, None)
                self._dirty_streak[rank].pop(page, None)
                self._assumed[rank].pop(page, None)
            self._pending[rank] = [n for n in self._pending[rank]
                                   if n.page not in set(region.pages())]
        for page in region.pages():
            self._home.pop(page, None)
            self._lazy_pages.discard(page)

    def _buffer(self, rank: int, region: Region) -> np.ndarray:
        key = (rank, region.region_id)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.zeros(region.size, dtype=np.uint8)
            self._buffers[key] = buf
        return buf

    # ---------------------------------------------------------------- homes
    def home_of(self, page: int, rank: Optional[int] = None) -> int:
        """Home rank of ``page``; resolves first-touch homes through the
        page's directory rank (page mod n_procs) on first use."""
        return self.engine.kernel(self.home_of_g(page, rank))

    def home_of_g(self, page: int, rank: Optional[int] = None):
        """Generator kernel of :meth:`home_of` (``yield from`` it)."""
        h = self._home.get(page)
        if h is not None:
            return h
        if page not in self._lazy_pages:
            raise ConfigurationError(f"page {page} is not globally allocated")
        if rank is None:
            rank = self.current_rank()
        cached = self._home_cache[rank].get(page)
        if cached is not None:
            return cached
        directory = page % self.n_procs
        if directory == rank:
            # We are the directory: claim it locally.
            self._home[page] = rank
            self._lazy_pages.discard(page)
            return rank
        h = yield from self.chan.rpc_g(
            self.node_of(rank), self.node_of(directory), "gethome",
            payload={"page": page, "requester": rank}, size=16)
        self._home_cache[rank][page] = h
        return h

    def _h_gethome(self, msg) -> Reply:
        page = msg.payload["page"]
        h = self._home.get(page)
        if h is None:
            h = msg.payload["requester"]
            self._home[page] = h
            self._lazy_pages.discard(page)
        return Reply(payload=h, size=8)

    # ---------------------------------------------------------------- access
    def _access_g(self, rank: int, region: Region, runs: List[Run],
                  write: bool):
        node = self.cluster.node(self.node_of(rank))
        pt = self._ptables[rank]
        buf = self._buffer(rank, region)
        # Contiguous accesses travel as page spans; the table walk expands
        # them only where a page's protection state forces a fault, so a
        # bulk access to resident pages costs O(spans) metadata instead of
        # O(pages). Faults themselves stay per page (the simulated CPU
        # faults page by page), so protocol traffic is unchanged.
        spans = self._page_spans(region, runs)
        faulting = pt.faulting_in_spans(spans, write)
        st = self.rank_stats[rank]
        if write:
            st.write_faults += len(faulting)
        else:
            st.read_faults += len(faulting)
        sharing = self.engine.sharing
        if sharing.enabled:
            now = self.engine.now
            for page in faulting:
                sharing.fault(rank, page, write, now)
            self._sharing_record_access(rank, region, runs, write)
        obs = self.engine.obs
        for page in faulting:
            # One span per page fault (the simulated SIGSEGV); its getpage
            # fetch, the fetch's wire transfers and any fault-injected
            # retransmissions all hang below it in the causal tree.
            with obs.span("dsm.fault", rank=rank, page=page, write=write):
                home = yield from self.home_of_g(page, rank)
                state = pt.state(page)
                yield from node.cpu_time_g(self.params.fault_handling_cost
                                           + self.params.hamster_fault_hook)
                if home == rank:
                    # Home pages are served locally; first touch enables them.
                    pt.set_state(page, PageState.READ_WRITE)
                else:
                    if state is PageState.INVALID:
                        yield from self._fetch_page_g(rank, region, page, home)
                        state = PageState.READ_ONLY
                    if write:
                        yield from self._make_twin_g(rank, region, page)
                        pt.set_state(page, PageState.READ_WRITE)
                    else:
                        pt.set_state(page, PageState.READ_ONLY)
                if write:
                    self._dirty[rank][page] = region
        if write:
            # Non-faulting writes to pages already RW in this interval are
            # already in the dirty set; home pages reached RW earlier may be
            # written again in a *later* interval without a fault only if
            # they were not re-protected — the flush re-protects, so every
            # interval's first write lands here. Pages under the adaptive
            # single-writer assumption stay out of the dirty set (they are
            # auto-announced at flush without detection).
            assumed = self._assumed[rank]
            dirty = self._dirty[rank]
            for first, last in spans:
                for page in range(first, last + 1):
                    if (page not in dirty and page not in assumed
                            and pt.state(page) is PageState.READ_WRITE):
                        dirty[page] = region
        nbytes = sum(ln for _, ln in runs)
        yield from node.mem_touch_g(nbytes)
        return buf

    def _fetch_page_g(self, rank: int, region: Region, page: int, home: int):
        """getpage round trip; copies real home bytes into the local copy."""
        off, length = region.page_extent(page)
        with self.engine.obs.span("dsm.fetch", rank=rank, page=page, home=home):
            data = yield from self.chan.rpc_g(
                self.node_of(rank), self.node_of(home), "getpage",
                payload={"page": page, "region": region.region_id},
                size=PAGE_WIRE_HEADER)
            buf = self._buffer(rank, region)
            buf[off:off + length] = data
            node = self.cluster.node(self.node_of(rank))
            yield from node.mem_touch_g(length)
        st = self.rank_stats[rank]
        st.pages_fetched += 1
        if self.engine.sharing.enabled:
            self.engine.sharing.fetch(rank, page, home, length,
                                      self.engine.now)
        self.engine.trace.emit("jj.fetch", rank=rank, page=page, home=home)

    def _h_getpage(self, msg):
        page = msg.payload["page"]
        home = self._home[page]
        region = self.space.region_at(page * self.space.page_size)
        off, length = region.page_extent(page)
        buf = self._buffer(home, region)
        node = self.cluster.node(self.node_of(home))
        yield from node.cpu_time_g(self.params.page_serve_cost)
        yield from node.mem_touch_g(length)
        return Reply(payload=buf[off:off + length].copy(), size=length + PAGE_WIRE_HEADER)

    def _make_twin_g(self, rank: int, region: Region, page: int):
        if page in self._twins[rank]:
            return
        off, length = region.page_extent(page)
        buf = self._buffer(rank, region)
        self._twins[rank][page] = buf[off:off + length].copy()
        node = self.cluster.node(self.node_of(rank))
        yield from node.cpu_time_g(self.params.twin_fixed_cost)
        yield from node.mem_touch_g(2 * length)
        self.rank_stats[rank].twins_created += 1

    # ----------------------------------------------------------------- flush
    def _flush_g(self, rank: int):
        """Ship all dirty pages' diffs home (awaited); returns the notices.

        This is the eager home-based release of JiaJia: after it returns,
        every home copy reflects this rank's interval writes.

        Adaptive single-writer detection: a home page found dirty for
        ``ASSUME_STREAK`` consecutive intervals stops being re-protected —
        the protocol *assumes* it dirty and announces it every interval
        without paying the fault. Every ``ASSUME_REVALIDATE``-th interval
        the page is re-protected once to revalidate the assumption (so a
        page that goes read-only, like an LU pivot panel, stops spamming
        notices). Correctness is unaffected: assumptions only ever add
        notices, never drop them.
        """
        dirty = self._dirty[rank]
        assumed = self._assumed[rank]
        # Streaks only count *consecutive* dirty intervals: prune entries
        # for pages quiet this interval (must happen even on fully quiet
        # flushes, before the early return).
        if self._dirty_streak[rank]:
            self._dirty_streak[rank] = {
                p: c for p, c in self._dirty_streak[rank].items() if p in dirty}
        if not dirty and not assumed:
            return []
        with self.engine.obs.span("dsm.flush", rank=rank,
                                  pages=len(dirty) + len(assumed)):
            return (yield from self._flush_dirty_g(rank, dirty, assumed))

    def _flush_dirty_g(self, rank: int, dirty: Dict[int, Region],
                       assumed: Dict[int, int]):
        node = self.cluster.node(self.node_of(rank))
        pt = self._ptables[rank]
        notices: List[WriteNotice] = []
        by_home: Dict[int, List[Diff]] = {}
        st = self.rank_stats[rank]
        streak = self._dirty_streak[rank]
        # Auto-announced pages: notice without detection; periodic
        # revalidation drops them back to the detected path.
        for page in list(assumed):
            notices.append(WriteNotice(page=page, writer=rank))
            assumed[page] += 1
            if assumed[page] >= self.ASSUME_REVALIDATE:
                del assumed[page]
                streak[page] = self.ASSUME_STREAK - 1  # one fault re-enters
                pt.set_state(page, PageState.READ_ONLY)
        for page, region in dirty.items():
            notices.append(WriteNotice(page=page, writer=rank))
            home = yield from self.home_of_g(page, rank)
            off, length = region.page_extent(page)
            if home == rank:
                streak[page] = streak.get(page, 0) + 1
                if streak[page] >= self.ASSUME_STREAK:
                    # Enter the single-writer assumption: stay writable.
                    assumed[page] = 0
                    del streak[page]
                else:
                    # Re-protect so the next interval's write is detected.
                    pt.set_state(page, PageState.READ_ONLY)
                continue
            twin = self._twins[rank].pop(page)
            buf = self._buffer(rank, region)
            yield from node.cpu_time_g(self.params.diff_fixed_cost)
            yield from node.mem_touch_g(2 * length)
            diff = make_diff(page, twin, buf[off:off + length])
            st.diffs_created += 1
            st.diff_bytes += diff.changed_bytes
            if not diff.empty:
                by_home.setdefault(home, []).append(diff)
            pt.set_state(page, PageState.READ_ONLY)
        for home, diffs in sorted(by_home.items()):
            size = sum(diff_wire_size(d) for d in diffs)
            yield from self.chan.rpc_g(
                self.node_of(rank), self.node_of(home), "putdiffs",
                payload={"diffs": diffs}, size=size)
        dirty.clear()
        if self.engine.sharing.enabled:
            # Write notices are the protocol's ownership stream: one per
            # page per interval, naming the writer — exactly what the
            # ping-pong detector alternates over.
            now = self.engine.now
            for n in notices:
                self.engine.sharing.notice(n.page, n.writer, now)
        self._history[rank].extend(notices)
        self._pending[rank].extend(notices)
        return notices

    def _h_putdiffs(self, msg):
        diffs: List[Diff] = msg.payload["diffs"]
        node = None
        for diff in diffs:
            home = self._home[diff.page]
            region = self.space.region_at(diff.page * self.space.page_size)
            off, length = region.page_extent(diff.page)
            buf = self._buffer(home, region)
            node = self.cluster.node(self.node_of(home))
            yield from node.cpu_time_g(self.params.diff_apply_fixed_cost)
            written = apply_diff(buf[off:off + length], diff)
            yield from node.mem_touch_g(2 * written)
        return Reply(payload=True, size=8)

    # ----------------------------------------------------------- invalidation
    def _apply_notices_g(self, rank: int, notices: List[WriteNotice]):
        pt = self._ptables[rank]
        st = self.rank_stats[rank]
        st.write_notices_received += len(notices)
        # Never invalidate a page this rank is mid-interval dirty on: its
        # local writes are still pending a flush (concurrent writers to one
        # page merge at the home via diffs — the multiple-writer protocol).
        dirty = self._dirty[rank]
        pages = {n.page for n in notices if n.writer != rank and n.page not in dirty}
        node = self.cluster.node(self.node_of(rank))
        # Scanning the notice list is a cheap vectorized pass; the real
        # per-page cost (mprotect) applies only to pages actually present.
        yield from node.cpu_time_g(len(notices) * self.params.notice_scan_cost)
        if not pages:
            return
        invalidated = pt.invalidate_many(pages)
        yield from node.cpu_time_g(invalidated * self.params.write_notice_cost)
        st.pages_invalidated += invalidated
        self.engine.trace.emit("jj.invalidate", rank=rank, pages=invalidated)

    # ------------------------------------------------------------------ locks
    def _manager_of(self, lock_id: int) -> int:
        return lock_id % self.n_procs

    def _lock_state(self, lock_id: int) -> _LockState:
        if lock_id not in self._locks:
            self._locks[lock_id] = _LockState()
        return self._locks[lock_id]

    def lock_g(self, lock_id: int):
        rank = self.current_rank()
        with self.engine.obs.span("dsm.lock", rank=rank, lock=lock_id):
            yield from self.cluster.node(self.node_of(rank)).cpu_time_g(
                self.params.hamster_sync_hook)
            st = self.rank_stats[rank]
            st.lock_acquires += 1
            t0 = self.engine.now
            manager = self._manager_of(lock_id)
            cursor_key = lock_id if self.scope_consistency else -1
            cursor = self._cursors[rank].get(cursor_key, 0)
            if manager == rank:
                notices, seq = yield from self._local_lock_acquire_g(
                    lock_id, rank, cursor)
            else:
                result = yield from self.chan.rpc_g(
                    self.node_of(rank), self.node_of(manager), "lock.acq",
                    payload={"lock": lock_id, "rank": rank,
                             "cursor": cursor}, size=24)
                notices, seq = result["notices"], result["seq"]
            self._cursors[rank][cursor_key] = seq
            yield from self._apply_notices_g(rank, notices)
            st.lock_wait_time += self.engine.now - t0

    def _local_lock_acquire_g(self, lock_id: int, rank: int, cursor: int):
        node = self.cluster.node(self.node_of(rank))
        yield from node.cpu_time_g(self.params.os_sync_cost)
        ls = self._lock_state(lock_id)
        if ls.holder is None:
            ls.holder = rank
            return self._notices_for(ls, cursor)
        waiter = _LocalWaiter(self.engine.require_process(), rank, cursor)
        ls.queue.append(waiter)
        with self.engine.obs.span("dsm.wait", rank=rank, lock=lock_id):
            while not waiter.granted:
                yield PARK
        return waiter.notices, waiter.seq

    def _notices_for(self, ls: _LockState, cursor: int) -> Tuple[List[WriteNotice], int]:
        if self.scope_consistency:
            return ls.log.since(cursor)
        # Ablation mode: acquire delivers the *global* notice tail (lazy
        # release consistency approximation) — see _global_log.
        return self._global_log.since(cursor)

    def try_lock_g(self, lock_id: int):
        """Non-blocking acquire: one round trip to the manager either way."""
        rank = self.current_rank()
        manager = self._manager_of(lock_id)
        cursor_key = lock_id if self.scope_consistency else -1
        cursor = self._cursors[rank].get(cursor_key, 0)
        if manager == rank:
            node = self.cluster.node(self.node_of(rank))
            yield from node.cpu_time_g(self.params.os_sync_cost)
            ls = self._lock_state(lock_id)
            if ls.holder is not None:
                return False
            ls.holder = rank
            notices, seq = self._notices_for(ls, cursor)
        else:
            result = yield from self.chan.rpc_g(
                self.node_of(rank), self.node_of(manager), "lock.tryacq",
                payload={"lock": lock_id, "rank": rank,
                         "cursor": cursor}, size=24)
            if not result["granted"]:
                return False
            notices, seq = result["notices"], result["seq"]
        self._cursors[rank][cursor_key] = seq
        yield from self._apply_notices_g(rank, notices)
        self.rank_stats[rank].lock_acquires += 1
        return True

    def _h_lock_tryacq(self, msg) -> Reply:
        ls = self._lock_state(msg.payload["lock"])
        if ls.holder is not None:
            return Reply(payload={"granted": False}, size=16)
        ls.holder = msg.payload["rank"]
        notices, seq = self._notices_for(ls, msg.payload["cursor"])
        return Reply(payload={"granted": True, "notices": notices, "seq": seq},
                     size=16 + len(notices) * NOTICE_WIRE_BYTES)

    def _h_lock_acq(self, msg) -> Optional[Reply]:
        lock_id = msg.payload["lock"]
        rank = msg.payload["rank"]
        cursor = msg.payload["cursor"]
        ls = self._lock_state(lock_id)
        if ls.holder is None:
            ls.holder = rank
            notices, seq = self._notices_for(ls, cursor)
            return Reply(payload={"notices": notices, "seq": seq},
                         size=16 + len(notices) * NOTICE_WIRE_BYTES)
        ls.queue.append(msg)
        return None  # deferred grant

    def unlock_g(self, lock_id: int):
        rank = self.current_rank()
        with self.engine.obs.span("dsm.unlock", rank=rank, lock=lock_id):
            yield from self.cluster.node(self.node_of(rank)).cpu_time_g(
                self.params.hamster_sync_hook)
            self.rank_stats[rank].lock_releases += 1
            yield from self._flush_g(rank)
            # Bind every notice since the last release to this lock's scope
            # (covers writes flushed early by explicit fences).
            notices, self._pending[rank] = self._pending[rank], []
            manager = self._manager_of(lock_id)
            if manager == rank:
                yield from self._local_lock_release_g(lock_id, rank, notices)
            else:
                yield from self.chan.post_g(
                    self.node_of(rank), self.node_of(manager), "lock.rel",
                    payload={"lock": lock_id, "rank": rank,
                             "notices": notices},
                    size=16 + len(notices) * NOTICE_WIRE_BYTES)

    def _local_lock_release_g(self, lock_id: int, rank: int,
                              notices: List[WriteNotice]):
        node = self.cluster.node(self.node_of(rank))
        yield from node.cpu_time_g(self.params.os_sync_cost)
        yield from self._do_release_g(lock_id, rank, notices)

    def _h_lock_rel(self, msg):
        yield from self._do_release_g(msg.payload["lock"], msg.payload["rank"],
                                      msg.payload["notices"])
        return None

    def _do_release_g(self, lock_id: int, rank: int,
                      notices: List[WriteNotice]):
        ls = self._lock_state(lock_id)
        if ls.holder != rank:
            raise SynchronizationError(
                f"rank {rank} released lock {lock_id} held by {ls.holder}")
        ls.log.append(notices)
        if not self.scope_consistency:
            self._global_log.append(notices)
        if ls.queue:
            nxt = ls.queue.pop(0)
            if isinstance(nxt, _LocalWaiter):
                ls.holder = nxt.rank
                nxt.notices, nxt.seq = self._notices_for(ls, nxt.cursor)
                nxt.granted = True
                nxt.proc.wake()
            else:  # deferred remote request Message
                ls.holder = nxt.payload["rank"]
                notices2, seq = self._notices_for(ls, nxt.payload["cursor"])
                yield from self.chan.reply_g(
                    nxt, payload={"notices": notices2, "seq": seq},
                    size=16 + len(notices2) * NOTICE_WIRE_BYTES)
        else:
            ls.holder = None

    # non-scope (RC ablation) global log
    @property
    def _global_log(self) -> NoticeLog:
        log = getattr(self, "_global_log_obj", None)
        if log is None:
            log = NoticeLog()
            self._global_log_obj = log
        return log

    # --------------------------------------------------------------- barrier
    def barrier_g(self):
        rank = self.current_rank()
        with self.engine.obs.span("dsm.barrier", rank=rank):
            yield from self.cluster.node(self.node_of(rank)).cpu_time_g(
                self.params.hamster_sync_hook)
            st = self.rank_stats[rank]
            st.barriers += 1
            t0 = self.engine.now
            yield from self._flush_g(rank)
            self._pending[rank] = []  # the barrier globalizes all below
            history, self._history[rank] = self._history[rank], []
            if rank == 0:
                yield from self._local_barrier_arrive_g(rank, history)
            else:
                merged = yield from self.chan.rpc_g(
                    self.node_of(rank), self.node_of(0), "barrier.arrive",
                    payload={"rank": rank, "notices": history},
                    size=16 + len(history) * NOTICE_WIRE_BYTES)
                yield from self._apply_notices_g(rank, merged)
            st.barrier_wait_time += self.engine.now - t0

    def _local_barrier_arrive_g(self, rank: int, history: List[WriteNotice]):
        proc = self.engine.require_process()
        waiter = _LocalWaiter(proc, rank, 0)
        self._barrier_notices.extend(history)
        self._barrier_round.append(waiter)
        if len(self._barrier_round) == self.n_procs:
            yield from self._barrier_complete_g()
        else:
            with self.engine.obs.span("dsm.wait", rank=rank, barrier=True):
                while not waiter.granted:
                    yield PARK
        yield from self._apply_notices_g(rank, waiter.notices)

    def _h_barrier_arrive(self, msg):
        self._barrier_notices.extend(msg.payload["notices"])
        self._barrier_round.append(msg)
        if len(self._barrier_round) == self.n_procs:
            yield from self._barrier_complete_g()
        return None  # replies sent by _barrier_complete_g

    def _barrier_complete_g(self):
        merged = self._barrier_notices
        arrivals = self._barrier_round
        self._barrier_notices = []
        self._barrier_round = []
        self._barrier_generation += 1
        node0 = self.cluster.node(self.node_of(0))
        yield from node0.cpu_time_g(len(merged) * self.params.notice_scan_cost)
        size = 16 + len(merged) * NOTICE_WIRE_BYTES
        for arrival in arrivals:
            if isinstance(arrival, _LocalWaiter):
                arrival.notices = merged
                arrival.granted = True
                if arrival.proc is not self.engine.current_process:
                    arrival.proc.wake()
            else:
                yield from self.chan.reply_g(arrival, payload=merged, size=size)

    def refresh_runs_g(self, region: Region, runs: List[Run]):
        """Invalidate the calling rank's cached (non-home, non-dirty) copies
        of the touched pages so the next read refetches from the homes."""
        rank = self.current_rank()
        pt = self._ptables[rank]
        dirty = self._dirty[rank]
        node = self.cluster.node(self.node_of(rank))
        pages = []
        for p in self._pages_touched(region, runs):
            home = yield from self.home_of_g(p, rank)
            if home != rank and p not in dirty:
                pages.append(p)
        if pages:
            yield from node.cpu_time_g(len(pages) * self.params.write_notice_cost)
            self.rank_stats[rank].pages_invalidated += pt.invalidate_many(pages)

    # ------------------------------------------------------------ consistency
    def sync_consistency_g(self):
        """Flush this rank's writes home (used by the consistency API and by
        one-sided models); notices stay in the history for the next barrier."""
        yield from self._flush_g(self.current_rank())

    def consistency_model(self) -> str:
        return "scope" if self.scope_consistency else "release"

    def capabilities(self) -> frozenset:
        caps = {
            "software_dsm",
            "home_based",
            "multiple_writer",
            "distribution:block",
            "distribution:cyclic",
            "distribution:single_home",
            "distribution:explicit",
            "distribution:first_touch",
            "consistency:scope",
            "consistency:release",
        }
        return frozenset(caps)

    # ---------------------------------------------------------------- debug
    def page_state(self, rank: int, page: int) -> PageState:
        """Inspect a rank's protection state for a page (tests)."""
        return self._ptables[rank].state(page)
