"""Twin/diff machinery for the multiple-writer protocol.

A *twin* is a pristine copy of a page taken at the first write after a
synchronization point. At release time the protocol diffs the twin against
the current page; the diff — a list of ``(offset, bytes)`` runs — is shipped
to the page's home and applied there. Two ranks writing disjoint parts of
the same page produce non-overlapping diffs that merge cleanly at the home
(false sharing costs bandwidth, not correctness).

Diff encoding is run-length over the byte-wise inequality mask, computed
with vectorized numpy (the guides' "vectorize, don't loop" rule — pages are
4 KiB, so a Python per-byte loop would dominate simulation run time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import MemoryError_

__all__ = ["Diff", "make_diff", "apply_diff", "diff_wire_size"]

#: Per-run wire overhead: 4-byte offset + 4-byte length.
RUN_HEADER_BYTES = 8
#: Per-diff wire overhead: page number + run count.
DIFF_HEADER_BYTES = 12


@dataclass
class Diff:
    """Encoded modifications of one page."""

    page: int
    runs: List[Tuple[int, np.ndarray]]  # (offset-in-page, changed bytes)

    @property
    def changed_bytes(self) -> int:
        return sum(len(data) for _, data in self.runs)

    @property
    def empty(self) -> bool:
        return not self.runs


def make_diff(page: int, twin: np.ndarray, current: np.ndarray) -> Diff:
    """Encode the bytes of ``current`` that differ from ``twin``."""
    if twin.shape != current.shape:
        raise MemoryError_(
            f"twin/page size mismatch: {twin.shape} vs {current.shape}")
    neq = twin != current
    if not neq.any():
        return Diff(page, [])
    # Boundaries of True-runs in the inequality mask.
    padded = np.empty(len(neq) + 2, dtype=bool)
    padded[0] = padded[-1] = False
    padded[1:-1] = neq
    edges = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = edges[0::2], edges[1::2]
    runs = [(int(s), current[s:e].copy()) for s, e in zip(starts, ends)]
    return Diff(page, runs)


def apply_diff(target: np.ndarray, diff: Diff) -> int:
    """Apply ``diff`` to a home page buffer; returns bytes written."""
    total = 0
    n = len(target)
    for offset, data in diff.runs:
        if offset < 0 or offset + len(data) > n:
            raise MemoryError_(
                f"diff run [{offset}, {offset + len(data)}) exceeds page size {n}")
        target[offset:offset + len(data)] = data
        total += len(data)
    return total


def diff_wire_size(diff: Diff) -> int:
    """Bytes this diff occupies in a release message."""
    return DIFF_HEADER_BYTES + len(diff.runs) * RUN_HEADER_BYTES + diff.changed_bytes
