"""Simulated processes: stackless generator coroutines or backing threads.

A :class:`SimProcess` is a simulated thread of control scheduled in virtual
time. Two execution backends implement it (``Engine(procs=...)`` /
``REPRO_ENGINE_PROCS``, mirroring the event-queue selection):

* ``"generator"`` (default) — a process whose body is a *generator
  function* runs **stackless**: the body yields at every blocking point and
  the engine's dispatch loop drives it with one frame switch per context
  switch. No OS thread, no baton lock, ~KBs of state per process — this is
  what makes 1024-node topologies practical. Bodies that are plain
  callables still get a backing thread (legacy code keeps working).
* ``"thread"`` — the differential reference. Every process owns a real
  Python thread with strict baton hand-off; generator-function bodies are
  trampolined on the thread (:meth:`SimProcess.drive`), so *the same body
  code* runs under both backends and the golden-run harness can assert the
  two bit-identical.

The yield-point contract for generator bodies (and the ``*_g`` middleware
kernels they call via ``yield from``):

* ``yield <seconds>`` — advance this process's virtual time (the stackless
  form of :meth:`hold`); durations ``<= 0`` are no-ops, exactly like
  ``hold``.
* ``yield PARK`` — park until some other event schedules this process
  (the stackless form of :meth:`suspend`/:meth:`wake`). Resumes can be
  spurious, so code parks in a re-checking loop when it waits for a
  condition — the same discipline the blocking primitives already follow.

Blocking methods (``hold``/``suspend``/``join``/…) raise from a stackless
process: middleware reachable from generator bodies must route through its
``*_g`` twin (see docs/architecture.md). Both backends execute those same
twins — the blocking wrappers drive them through :meth:`Engine.kernel` — so
the two backends cannot drift apart.

The design mirrors the paper's setting, where each cluster node runs one
application process; here a "node process" is a ``SimProcess`` whose virtual
time advances as it computes, touches memory, and exchanges messages.
"""

from __future__ import annotations

import _thread
import inspect
import threading
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["SimProcess", "PARK"]


class _Park:
    """Sentinel yielded by generator bodies to park until the next dispatch."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "PARK"


#: Yield this from a generator-style process body to block indefinitely
#: until another process/event schedules the process (see module docs).
PARK = _Park()


class SimProcess:
    """A simulated thread of control scheduled in virtual time.

    Parameters
    ----------
    engine:
        The :class:`~repro.sim.engine.Engine` that schedules this process.
    fn:
        The Python callable executed by the process. It receives this
        process as its first argument followed by ``args``/``kwargs``.
        A *generator function* body runs stackless under the generator
        backend and is trampolined on a thread under the thread backend.
    name:
        Debug name; appears in traces and deadlock reports.
    """

    def __init__(self, engine, fn: Callable, args: tuple = (), kwargs: Optional[dict] = None,
                 name: str = "proc", daemon: bool = False) -> None:
        # Pids are allocated per engine (a fresh engine starts at pid 1),
        # so ids never leak across engines or test cases.
        self.pid = engine._alloc_pid()
        self.engine = engine
        self.name = name
        self._fn = fn
        self._args = args
        self._kwargs = kwargs or {}
        #: daemon processes (message servers) never count as deadlocked and
        #: do not keep the simulation alive.
        self.daemon = daemon
        self._thread: Optional[threading.Thread] = None
        #: True once started with a generator body under the generator
        #: backend: no thread, no baton; the dispatch loop steps the frame.
        self.stackless = False
        self._gen = None
        # The hand-off baton (thread-backed processes only): held (locked)
        # whenever the process is not running; a dispatcher releases it to
        # transfer control. Created at start() so stackless processes carry
        # no lock at all.
        self._baton = None
        self.alive = False
        self.started = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._waiters: list = []            # processes blocked in join()
        engine.register(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else ("done" if self.started else "new")
        return f"<SimProcess {self.name}#{self.pid} {state}>"

    def __str__(self) -> str:
        return f"{self.name}#{self.pid}"

    # ----------------------------------------------------------------- start
    def start(self, delay: float = 0.0) -> "SimProcess":
        """Arrange for the process body to begin ``delay`` seconds from now."""
        if self.started:
            raise SimulationError(f"{self} already started")
        self.started = True
        self.alive = True
        if (self.engine.procs_kind == "generator"
                and inspect.isgeneratorfunction(self._fn)):
            # Stackless: instantiating the generator runs no body code; the
            # first dispatch steps it to its first yield point.
            self.stackless = True
            self._gen = self._fn(self, *self._args, **self._kwargs)
        else:
            baton = _thread.allocate_lock()
            baton.acquire()  # created locked: thread parks until first dispatch
            self._baton = baton
            self._thread = threading.Thread(target=self._bootstrap,
                                            name=str(self), daemon=True)
            self._thread.start()
        self.engine.schedule(delay, self)
        return self

    def _bootstrap(self) -> None:
        # Park until the engine first dispatches us (the dispatcher sets
        # engine._current before releasing the baton).
        self._baton.acquire()
        try:
            result = self._fn(self, *self._args, **self._kwargs)
            if inspect.isgenerator(result):
                # Generator-style body under the thread backend: trampoline
                # it here so both backends execute the same body code.
                result = self.drive(result)
            self.result = result
        except BaseException as exc:  # noqa: BLE001 - propagated to engine.run()
            self.exception = exc
            self.engine._report_exception(exc)
        finally:
            self.alive = False
            self.engine.trace.emit("proc.exit", proc=str(self))
            # Wake joiners at the instant of death.
            for waiter in self._waiters:
                self.engine.schedule(0.0, waiter)
            self._waiters.clear()
            # Terminal hand-off: keep dispatching on this thread until
            # control moves elsewhere (our own resume can no longer be
            # dispatched — alive is False), then let the thread exit.
            self.engine._advance(self)

    # ------------------------------------------------------------- stackless
    def _step(self) -> None:
        """Advance the stackless body to its next yield point.

        Called by the engine's dispatch loop whenever this process's resume
        event is dispatched (``engine._current`` is already set). Never
        raises: body exceptions are reported to the engine exactly like the
        thread backend's ``_bootstrap`` does.
        """
        gen = self._gen
        engine = self.engine
        send = gen.send
        while True:
            try:
                effect = send(None)
            except StopIteration as stop:
                self.result = stop.value
                break
            except BaseException as exc:  # noqa: BLE001 - re-raised from run()
                self.exception = exc
                engine._report_exception(exc)
                break
            if effect is PARK:
                return
            if isinstance(effect, (float, int)):
                if effect > 0:
                    engine.schedule(effect, self)
                    return
                continue  # non-positive holds are no-ops, like hold()
            err = SimulationError(
                f"{self}: generator body yielded {effect!r}; expected PARK "
                "or a hold duration in seconds")
            self.exception = err
            engine._report_exception(err)
            gen.close()
            break
        self._finish()

    def _finish(self) -> None:
        """Terminal bookkeeping, mirroring ``_bootstrap``'s finally block."""
        self.alive = False
        self._gen = None
        self.engine.trace.emit("proc.exit", proc=str(self))
        for waiter in self._waiters:
            self.engine.schedule(0.0, waiter)
        self._waiters.clear()

    def drive(self, gen) -> Any:
        """Run a generator-style kernel to completion from blocking context.

        The thread-backed trampoline: ``yield <seconds>`` becomes
        :meth:`hold`, ``yield PARK`` becomes :meth:`suspend`. Blocking
        wrappers around ``*_g`` middleware kernels use this (via
        :meth:`Engine.kernel`), so thread-backed and stackless execution
        share one implementation of every protocol.
        """
        if self.stackless:
            # A kernel that never yields (zero-cost charge, pure query) is
            # fine from stackless context; one that blocks must be reached
            # through its *_g twin instead.
            try:
                gen.send(None)
            except StopIteration as stop:
                return stop.value
            gen.close()
            raise SimulationError(
                f"{self}: blocking call inside a stackless process; "
                "generator-backend code must 'yield from' the *_g variant "
                "of this operation instead")
        send = gen.send
        while True:
            try:
                effect = send(None)
            except StopIteration as stop:
                return stop.value
            if effect is PARK:
                self.suspend()
            elif isinstance(effect, (float, int)):
                self.hold(effect)
            else:
                gen.close()
                raise SimulationError(
                    f"{self}: generator kernel yielded {effect!r}; expected "
                    "PARK or a hold duration in seconds")

    # -------------------------------------------------------------- handoff
    def _park(self) -> None:
        """Give up control; return when a dispatcher hands it back."""
        if self.engine._advance(self) == "handed":
            self._baton.acquire()

    # ------------------------------------------------------------- blocking
    def hold(self, duration: float) -> None:
        """Advance this process's virtual time by ``duration`` seconds.

        This is the fundamental cost-charging primitive: CPU cycles, memory
        latencies, and protocol overheads all reduce to ``hold`` calls.
        A zero or negative duration is a no-op (costs can legitimately
        round to zero). Stackless bodies ``yield duration`` instead.
        """
        if duration <= 0:
            return
        if self.stackless:
            raise SimulationError(
                f"{self}: hold() inside a stackless process; the generator "
                "body must 'yield duration' instead")
        engine = self.engine
        engine.schedule(duration, self)
        if engine._advance(self) == "handed":
            self._baton.acquire()

    def suspend(self) -> None:
        """Block indefinitely until another process/event calls :meth:`wake`."""
        if self.stackless:
            raise SimulationError(
                f"{self}: suspend() inside a stackless process; the "
                "generator body must 'yield PARK' instead")
        self._park()

    def wake(self, delay: float = 0.0) -> None:
        """Schedule a suspended process to resume ``delay`` seconds from now."""
        self.engine.schedule(delay, self)

    def join(self, other: "SimProcess") -> Any:
        """Block until ``other`` terminates; returns its result.

        Re-raises nothing here — exceptions in ``other`` already abort the
        whole simulation via the engine.
        """
        if other is self:
            raise SimulationError("a process cannot join itself")
        if other.alive:
            other._waiters.append(self)
            self.suspend()
        return other.result

    def join_g(self, other: "SimProcess"):
        """Stackless twin of :meth:`join` (``result = yield from p.join_g(q)``)."""
        if other is self:
            raise SimulationError("a process cannot join itself")
        if other.alive:
            other._waiters.append(self)
            yield PARK
        return other.result

    # --------------------------------------------------------------- context
    @property
    def now(self) -> float:
        return self.engine.now
