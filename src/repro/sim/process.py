"""Thread-backed simulated processes.

Each :class:`SimProcess` owns a real Python thread, but the engine enforces
strict hand-off: exactly one of {the run() caller, some process thread} runs
at any instant. This gives the framework the ergonomics of blocking code —
middleware can call ``hold()`` or wait on a lock arbitrarily deep in its
call stack, with no generator/yield plumbing — while staying fully
deterministic: the order of execution is decided solely by the virtual-time
event queue.

Hand-off uses one raw lock (a *baton*) per process, held whenever the
process is not running. Giving up control means running the engine's
dispatch loop inline (:meth:`repro.sim.engine.Engine._advance`) and, only
if control actually moved to another thread, blocking on the baton until a
dispatcher hands it back. A process resumed by its own next event (a plain
``hold``, or an RPC whose reply callback ran inline) never touches a lock.
Process resumes are scheduled as the process object itself — the dispatcher
recognizes it and transfers control instead of calling it.

The design mirrors the paper's setting, where each cluster node runs one
application process; here a "node process" is a ``SimProcess`` whose virtual
time advances as it computes, touches memory, and exchanges messages.
"""

from __future__ import annotations

import _thread
import threading
from typing import Any, Callable, Optional

from repro.errors import SimulationError

__all__ = ["SimProcess"]


class SimProcess:
    """A simulated thread of control scheduled in virtual time.

    Parameters
    ----------
    engine:
        The :class:`~repro.sim.engine.Engine` that schedules this process.
    fn:
        The Python callable executed by the process. It receives this
        process as its first argument followed by ``args``/``kwargs``.
    name:
        Debug name; appears in traces and deadlock reports.
    """

    _ids = 0

    def __init__(self, engine, fn: Callable, args: tuple = (), kwargs: Optional[dict] = None,
                 name: str = "proc", daemon: bool = False) -> None:
        SimProcess._ids += 1
        self.pid = SimProcess._ids
        self.engine = engine
        self.name = name
        self._fn = fn
        self._args = args
        self._kwargs = kwargs or {}
        #: daemon processes (message servers) never count as deadlocked and
        #: do not keep the simulation alive.
        self.daemon = daemon
        self._thread: Optional[threading.Thread] = None
        # The hand-off baton: held (locked) whenever this process is not
        # running; a dispatcher releases it to transfer control here.
        # Created locked so the thread parks until its first dispatch.
        baton = _thread.allocate_lock()
        baton.acquire()
        self._baton = baton
        self.alive = False
        self.started = False
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self._waiters: list = []            # processes blocked in join()
        engine.register(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else ("done" if self.started else "new")
        return f"<SimProcess {self.name}#{self.pid} {state}>"

    def __str__(self) -> str:
        return f"{self.name}#{self.pid}"

    # ----------------------------------------------------------------- start
    def start(self, delay: float = 0.0) -> "SimProcess":
        """Arrange for the process body to begin ``delay`` seconds from now."""
        if self.started:
            raise SimulationError(f"{self} already started")
        self.started = True
        self.alive = True
        self._thread = threading.Thread(target=self._bootstrap, name=str(self), daemon=True)
        self._thread.start()
        self.engine.schedule(delay, self)
        return self

    def _bootstrap(self) -> None:
        # Park until the engine first dispatches us (the dispatcher sets
        # engine._current before releasing the baton).
        self._baton.acquire()
        try:
            self.result = self._fn(self, *self._args, **self._kwargs)
        except BaseException as exc:  # noqa: BLE001 - propagated to engine.run()
            self.exception = exc
            self.engine._report_exception(exc)
        finally:
            self.alive = False
            self.engine.trace.emit("proc.exit", proc=str(self))
            # Wake joiners at the instant of death.
            for waiter in self._waiters:
                self.engine.schedule(0.0, waiter)
            self._waiters.clear()
            # Terminal hand-off: keep dispatching on this thread until
            # control moves elsewhere (our own resume can no longer be
            # dispatched — alive is False), then let the thread exit.
            self.engine._advance(self)

    # -------------------------------------------------------------- handoff
    def _park(self) -> None:
        """Give up control; return when a dispatcher hands it back."""
        if self.engine._advance(self) == "handed":
            self._baton.acquire()

    # ------------------------------------------------------------- blocking
    def hold(self, duration: float) -> None:
        """Advance this process's virtual time by ``duration`` seconds.

        This is the fundamental cost-charging primitive: CPU cycles, memory
        latencies, and protocol overheads all reduce to ``hold`` calls.
        A zero or negative duration is a no-op (costs can legitimately
        round to zero).
        """
        if duration <= 0:
            return
        engine = self.engine
        engine.schedule(duration, self)
        if engine._advance(self) == "handed":
            self._baton.acquire()

    def suspend(self) -> None:
        """Block indefinitely until another process/event calls :meth:`wake`."""
        self._park()

    def wake(self, delay: float = 0.0) -> None:
        """Schedule a suspended process to resume ``delay`` seconds from now."""
        self.engine.schedule(delay, self)

    def join(self, other: "SimProcess") -> Any:
        """Block until ``other`` terminates; returns its result.

        Re-raises nothing here — exceptions in ``other`` already abort the
        whole simulation via the engine.
        """
        if other is self:
            raise SimulationError("a process cannot join itself")
        if other.alive:
            other._waiters.append(self)
            self.suspend()
        return other.result

    # --------------------------------------------------------------- context
    @property
    def now(self) -> float:
        return self.engine.now
