"""Virtual-time event engine.

The engine owns an event queue of ``(time, seq, action)`` entries and a
virtual clock. Time is a float in **seconds** of simulated wall-clock time.
Ties are broken by a monotonically increasing sequence number, which makes
every run deterministic regardless of Python hash seeds or OS scheduling.

Simulated processes (see :mod:`repro.sim.process`) are driven by the engine:
when a process blocks (``hold``, lock wait, message wait) it gives control
back to the dispatcher; exactly one of {the ``run()`` caller, some process
thread} executes at any instant, so no user-visible locking is needed
anywhere in the framework.

Two host-speed mechanisms live here (virtual-time results are bit-identical
either way — the golden-run harness in :mod:`repro.bench.diffcheck` enforces
that):

* The event queue is a :class:`~repro.sim.eventq.CalendarQueue` by default;
  the original heapq implementation remains available as the differential
  reference model (``Engine(queue="heap")`` or ``REPRO_ENGINE_QUEUE=heap``).
* Dispatch migrates between threads by **direct hand-off**: the dispatch
  loop (:meth:`Engine._advance`) runs on whichever thread is giving up
  control. Waking a process costs one raw-lock release (the waker) plus one
  acquire (the sleeper); event callbacks execute inline on the current
  thread; and a process whose next event is its own resume continues with
  no lock traffic at all. The previous design parked/woke threads through
  two ``threading.Event`` round trips per hand-off, which dominated host
  time in profiles.
"""

from __future__ import annotations

import os
import time as _time
from typing import Callable, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.obs.sharing import NULL_SHARING
from repro.obs.spans import NULL_OBS
from repro.sim.eventq import make_queue
from repro.sim.process import SimProcess
from repro.sim.trace import Tracer

#: Process-wide default host hook, applied to every Engine built after
#: :func:`set_host_hook`. Sweep worker processes use it to attach progress
#: heartbeats to engines constructed deep inside ``config.build()``.
_DEFAULT_HOST_HOOK: Optional[Tuple[Callable[["Engine"], None], int]] = None


def set_host_hook(callback: Optional[Callable[["Engine"], None]],
                  every_events: int = 4096) -> None:
    """Install (or, with ``None``, clear) the process-wide host hook.

    Every engine constructed afterwards invokes ``callback(engine)`` from
    the dispatch loop once per ``every_events`` dispatched events. The hook
    runs on the host side only: it may read counters (``events_executed``,
    ``now``) and talk to host-side channels, but it must not schedule
    events or charge virtual time — virtual results stay bit-identical
    whether or not a hook is armed.
    """
    global _DEFAULT_HOST_HOOK
    if callback is None:
        _DEFAULT_HOST_HOOK = None
        return
    if every_events < 1:
        raise ValueError(f"every_events must be >= 1, got {every_events}")
    _DEFAULT_HOST_HOOK = (callback, every_events)


def clear_host_hook() -> None:
    """Remove the process-wide host hook (idempotent)."""
    set_host_hook(None)


class Engine:
    """Discrete-event engine with a virtual clock.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.sim.trace.Tracer` capturing structured events
        for debugging and for the monitoring tests.
    queue:
        Event-queue implementation: ``"calendar"`` (default) or ``"heap"``
        (the differential reference). The ``REPRO_ENGINE_QUEUE`` environment
        variable overrides the default for unparameterized construction.
    procs:
        Process backend: ``"generator"`` (default; generator-function
        bodies run stackless, driven by the dispatch loop) or ``"thread"``
        (the differential reference: every process owns a backing thread
        with baton hand-off). The ``REPRO_ENGINE_PROCS`` environment
        variable overrides the default, mirroring the queue selection.
    """

    def __init__(self, trace: Optional[Tracer] = None,
                 queue: Optional[str] = None,
                 procs: Optional[str] = None) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        if queue is None:
            queue = os.environ.get("REPRO_ENGINE_QUEUE", "calendar")
        self.queue_kind = queue
        self._queue = make_queue(queue)
        if procs is None:
            procs = os.environ.get("REPRO_ENGINE_PROCS", "generator")
        if procs not in ("generator", "thread"):
            raise SimulationError(
                f"unknown process backend {procs!r}; "
                "expected 'generator' or 'thread'")
        self.procs_kind = procs
        # Per-engine pid allocation: a fresh engine hands out pid 1 first,
        # so process identities never leak across engines or test cases.
        self._next_pid: int = 0
        self._processes: list = []  # all SimProcess instances ever started
        self._current = None  # the SimProcess whose thread is running, if any
        self._running = False
        self._finished = False
        self._until: Optional[float] = None
        # The run() caller's wake-up baton: released by whichever thread
        # detects a stop condition (queue drained, bound exceeded, pending
        # exception) while run() blocks.
        import _thread

        self._main_baton = _thread.allocate_lock()
        self._main_baton.acquire()
        # Note: Tracer has __len__, so an empty tracer is falsy — test
        # identity, not truthiness.
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self.trace.bind_clock(lambda: self._now)
        # Observability hook (repro.obs). The shared null observer makes
        # every instrumentation site a no-op: zero state, zero virtual-time
        # cost, bit-identical runs. ClusterConfig.build swaps in a real
        # ObsRecorder when observability is requested.
        self.obs = NULL_OBS
        # Sharing-pattern analytics (repro.obs.sharing), same discipline as
        # obs: the shared null recorder is a no-op at every protocol
        # instrumentation site; ClusterConfig.build swaps in a real
        # SharingRecorder when sharing diagnosis is requested.
        self.sharing = NULL_SHARING
        # Host-side telemetry (repro.bench): how many events this engine has
        # dispatched and how much real wall-clock time run() has consumed.
        # Plain counters — they never influence virtual time.
        self.events_executed: int = 0
        self.host_seconds: float = 0.0
        # Host-side progress hook (fleet heartbeats): called every
        # _hook_every dispatched events when armed; 0 = disarmed (the
        # common case — one falsy check per event in _advance).
        self._host_hook: Optional[Callable[["Engine"], None]] = None
        self._hook_every: int = 0
        self._hook_next: int = 0
        if _DEFAULT_HOST_HOOK is not None:
            self.set_host_hook(*_DEFAULT_HOST_HOOK)
        # Exception raised inside a process thread, re-raised from run().
        self._pending_exc: Optional[BaseException] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def events_per_second(self) -> float:
        """Host-side dispatch rate (events / wall-clock second) across all
        run() calls so far; 0.0 before the first run."""
        if self.host_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.host_seconds

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        self._seq += 1
        self._queue.push(self._now + delay, self._seq, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` at absolute virtual time ``when``."""
        self.schedule(when - self._now, action)

    # -------------------------------------------------------------- processes
    def register(self, process) -> None:
        self._processes.append(process)

    def _alloc_pid(self) -> int:
        self._next_pid += 1
        return self._next_pid

    @property
    def current_process(self):
        """The simulated process currently executing, or ``None`` when the
        engine itself (an event callback) is running."""
        return self._current

    def require_process(self):
        """Return the current process; raise if called from engine context.

        Framework code that charges time or blocks must run inside a
        simulated process — this guard turns silent misuse into a clear
        error.
        """
        if self._current is None:
            raise SimulationError("operation requires a simulated process context")
        return self._current

    def kernel(self, gen):
        """Run a generator-style middleware kernel from blocking context.

        Blocking service wrappers are one-liners over their ``*_g`` twins::

            def lock(self, lock_id):
                return self.engine.kernel(self.lock_g(lock_id))

        so both process backends execute the *same* kernel code: the thread
        backend trampolines it here (``yield``s become ``hold``/``suspend``
        on the calling process), the generator backend reaches the twin
        directly via ``yield from`` and never enters this method.

        From engine context (no current process) a kernel may still run as
        long as it completes without yielding — this keeps non-blocking
        default implementations (e.g. a hardware-coherent substrate's
        ``sync_consistency``) callable from host-side code, while any
        attempt to actually block surfaces the usual context error.
        """
        proc = self._current
        if proc is not None:
            return proc.drive(gen)
        try:
            gen.send(None)
        except StopIteration as stop:
            return stop.value
        gen.close()
        raise SimulationError("operation requires a simulated process context")

    # -------------------------------------------------------------- dispatch
    def _advance(self, origin):
        """Dispatch events on the calling thread until control moves away.

        ``origin`` is the :class:`SimProcess` giving up control, or ``None``
        when called from :meth:`run`. Returns

        * ``"self"`` — origin's own resume was dispatched; it continues
          immediately (no lock traffic),
        * ``"handed"`` — control was transferred to another thread (a woken
          process, or the run() caller on a stop condition); the caller must
          park on its baton (process) or re-check stop state (run),
        * a stop reason (``"drained"`` / ``"until"`` / ``"exc"``) — only
          when ``origin`` is ``None``; run() acts on it directly.
        """
        queue = self._queue
        pop = queue.pop
        until = self._until
        while True:
            if self._pending_exc is not None:
                return self._stop(origin, "exc")
            try:
                when, seq, action = pop()
            except IndexError:
                return self._stop(origin, "drained")
            if until is not None and when > until:
                # Push back (same seq — ordering is unaffected by the round
                # trip) and stop: the caller asked for a bounded run.
                queue.push(when, seq, action)
                queue.rewind(until)
                self._now = until
                return self._stop(origin, "until")
            self._now = when
            self.events_executed += 1
            if self._hook_every and self.events_executed >= self._hook_next:
                self._fire_host_hook()
            if isinstance(action, SimProcess):
                if not action.alive:
                    continue  # stale resume for a finished process
                if action.stackless:
                    # Step the generator frame inline on this thread; it
                    # returns at its next yield point (or on exit), so the
                    # dispatch loop simply continues. A stackless process
                    # never re-enters _advance — no reentrancy to guard.
                    self._current = action
                    action._step()
                    self._current = None
                    continue
                if action is origin:
                    self._current = origin
                    return "self"
                self._current = action
                action._baton.release()
                return "handed"
            # Plain event callback: runs in engine context, inline on this
            # thread.
            self._current = None
            try:
                action()
            except BaseException as exc:  # noqa: BLE001 - re-raised from run()
                self._pending_exc = exc

    def _stop(self, origin, reason: str):
        """A stop condition was hit while dispatching: report it to run()."""
        self._current = None
        if origin is None:
            return reason
        self._main_baton.release()
        return "handed"

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains (or virtual ``until`` passes).

        Returns the final virtual time. Raises :class:`DeadlockError` if the
        queue drains while started processes are still alive and blocked —
        the simulated analogue of a hung cluster.
        """
        if self._running:
            raise SimulationError("engine is already running (no nested run())")
        self._running = True
        self._until = until
        host_t0 = _time.perf_counter()
        try:
            while True:
                outcome = self._advance(None)
                if outcome == "handed":
                    # A process thread runs the simulation now; it (or a
                    # successor) releases the baton on the next stop
                    # condition, after which stop state is re-derived here.
                    self._main_baton.acquire()
                    continue
                if outcome == "exc":
                    exc, self._pending_exc = self._pending_exc, None
                    raise exc
                if outcome == "until":
                    return self._now  # _advance already set _now = until
                blocked = [p for p in self._processes if p.alive and not p.daemon]
                if blocked:
                    raise DeadlockError(blocked)
                self._finished = True
                return self._now
        finally:
            self._running = False
            self._until = None
            self.host_seconds += _time.perf_counter() - host_t0

    def run_process(self, fn, *args, name: str = "proc", **kwargs):
        """Convenience: wrap ``fn`` in a process, run to completion, return
        its result. Used heavily by tests."""
        proc = SimProcess(self, fn, args=args, kwargs=kwargs, name=name)
        proc.start()
        self.run()
        return proc.result

    # ----------------------------------------------------------------- hooks
    def set_host_hook(self, callback: Optional[Callable[["Engine"], None]],
                      every_events: int = 4096) -> None:
        """Arm (or, with ``None``, disarm) this engine's host hook.

        ``callback(self)`` fires from the dispatch loop once per
        ``every_events`` dispatched events, on whichever host thread is
        dispatching. It must stay host-side: reading ``events_executed`` /
        ``now`` and writing to host channels is fine; scheduling events or
        charging virtual time is not.
        """
        if callback is None:
            self._host_hook, self._hook_every = None, 0
            return
        if every_events < 1:
            raise ValueError(f"every_events must be >= 1, got {every_events}")
        self._host_hook = callback
        self._hook_every = every_events
        self._hook_next = self.events_executed + every_events

    def _fire_host_hook(self) -> None:
        self._hook_next = self.events_executed + self._hook_every
        try:
            self._host_hook(self)
        except Exception:  # noqa: BLE001 — observability must never kill a run
            self._host_hook, self._hook_every = None, 0

    def _set_current(self, process) -> None:
        self._current = process

    def _report_exception(self, exc: BaseException) -> None:
        """Called from a process thread context when user code raised."""
        self._pending_exc = exc
