"""Virtual-time event engine.

The engine owns a priority queue of ``(time, seq, action)`` events and a
virtual clock. Time is a float in **seconds** of simulated wall-clock time.
Ties are broken by a monotonically increasing sequence number, which makes
every run deterministic regardless of Python hash seeds or OS scheduling.

Simulated processes (see :mod:`repro.sim.process`) are driven by the engine:
when a process blocks (``hold``, lock wait, message wait) it parks its
backing thread and returns control here; the engine then pops the next event.
Only one process thread ever runs at a time, so no user-visible locking is
needed anywhere in the framework.
"""

from __future__ import annotations

import heapq
import time as _time
from typing import Callable, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.obs.spans import NULL_OBS
from repro.sim.trace import Tracer


class Engine:
    """Discrete-event engine with a virtual clock.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.sim.trace.Tracer` capturing structured events
        for debugging and for the monitoring tests.
    """

    def __init__(self, trace: Optional[Tracer] = None) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._processes: list = []  # all SimProcess instances ever started
        self._current = None  # the SimProcess whose thread is running, if any
        self._running = False
        self._finished = False
        # Note: Tracer has __len__, so an empty tracer is falsy — test
        # identity, not truthiness.
        self.trace = trace if trace is not None else Tracer(enabled=False)
        self.trace.bind_clock(lambda: self._now)
        # Observability hook (repro.obs). The shared null observer makes
        # every instrumentation site a no-op: zero state, zero virtual-time
        # cost, bit-identical runs. ClusterConfig.build swaps in a real
        # ObsRecorder when observability is requested.
        self.obs = NULL_OBS
        # Host-side telemetry (repro.bench): how many events this engine has
        # dispatched and how much real wall-clock time run() has consumed.
        # Plain counters — they never influence virtual time.
        self.events_executed: int = 0
        self.host_seconds: float = 0.0
        # Exception raised inside a process thread, re-raised from run().
        self._pending_exc: Optional[BaseException] = None

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def events_per_second(self) -> float:
        """Host-side dispatch rate (events / wall-clock second) across all
        run() calls so far; 0.0 before the first run."""
        if self.host_seconds <= 0.0:
            return 0.0
        return self.events_executed / self.host_seconds

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after all
        events already scheduled for the current instant (FIFO within a
        timestamp).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, action))

    def schedule_at(self, when: float, action: Callable[[], None]) -> None:
        """Schedule ``action()`` at absolute virtual time ``when``."""
        self.schedule(when - self._now, action)

    # -------------------------------------------------------------- processes
    def register(self, process) -> None:
        self._processes.append(process)

    @property
    def current_process(self):
        """The simulated process currently executing, or ``None`` when the
        engine itself (an event callback) is running."""
        return self._current

    def require_process(self):
        """Return the current process; raise if called from engine context.

        Framework code that charges time or blocks must run inside a
        simulated process — this guard turns silent misuse into a clear
        error.
        """
        if self._current is None:
            raise SimulationError("operation requires a simulated process context")
        return self._current

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains (or virtual ``until`` passes).

        Returns the final virtual time. Raises :class:`DeadlockError` if the
        queue drains while started processes are still alive and blocked —
        the simulated analogue of a hung cluster.
        """
        if self._running:
            raise SimulationError("engine is already running (no nested run())")
        self._running = True
        host_t0 = _time.perf_counter()
        try:
            while self._queue:
                when, _seq, action = heapq.heappop(self._queue)
                if until is not None and when > until:
                    # Push back and stop: caller asked for a bounded run.
                    heapq.heappush(self._queue, (when, _seq, action))
                    self._now = until
                    return self._now
                self._now = when
                self.events_executed += 1
                action()
                if self._pending_exc is not None:
                    exc, self._pending_exc = self._pending_exc, None
                    raise exc
            blocked = [p for p in self._processes if p.alive and not p.daemon]
            if blocked:
                raise DeadlockError(blocked)
            self._finished = True
            return self._now
        finally:
            self._running = False
            self.host_seconds += _time.perf_counter() - host_t0

    def run_process(self, fn, *args, name: str = "proc", **kwargs):
        """Convenience: wrap ``fn`` in a process, run to completion, return
        its result. Used heavily by tests."""
        from repro.sim.process import SimProcess

        proc = SimProcess(self, fn, args=args, kwargs=kwargs, name=name)
        proc.start()
        self.run()
        return proc.result

    # ----------------------------------------------------------------- hooks
    def _set_current(self, process) -> None:
        self._current = process

    def _report_exception(self, exc: BaseException) -> None:
        """Called from a process thread context when user code raised."""
        self._pending_exc = exc
