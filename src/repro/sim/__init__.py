"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the whole reproduction runs: it
replaces the paper's physical four-node cluster with a virtual-time machine.
Simulated processes are backed by real Python threads, but the engine runs
exactly one at a time and hands control off at deterministic points, so every
simulation is exactly reproducible.

Public surface:

* :class:`~repro.sim.engine.Engine` — event queue + virtual clock.
* :class:`~repro.sim.process.SimProcess` — a simulated thread of control.
* :mod:`~repro.sim.resources` — locks, semaphores, queues, barriers that
  block in *virtual* time.
* :mod:`~repro.sim.trace` — structured event tracing.
"""

from repro.sim.engine import Engine, clear_host_hook, set_host_hook
from repro.sim.process import SimProcess
from repro.sim.resources import SimBarrier, SimCondition, SimLock, SimQueue, SimSemaphore
from repro.sim.trace import TraceEvent, Tracer

__all__ = [
    "Engine",
    "set_host_hook",
    "clear_host_hook",
    "SimProcess",
    "SimLock",
    "SimSemaphore",
    "SimCondition",
    "SimQueue",
    "SimBarrier",
    "Tracer",
    "TraceEvent",
]
