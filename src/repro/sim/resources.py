"""Synchronization resources that block in virtual time.

These are the simulation-kernel primitives the framework's *simulated*
synchronization (HAMSTER locks, barriers, DSM protocol waits) is built on.
They are strictly FIFO, which keeps runs deterministic and makes fairness
properties testable.

Every blocking operation is implemented **once**, as a generator kernel
(``acquire_g``, ``wait_g``, ``get_g``, …) following the yield-point
contract of :mod:`repro.sim.process`; the blocking method is a one-line
wrapper that trampolines the kernel on the calling thread-backed process
(:meth:`repro.sim.engine.Engine.kernel`). Stackless processes reach the
kernels directly with ``yield from`` — both process backends therefore
execute identical wait/wake sequences by construction.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.errors import SimulationError, SynchronizationError
from repro.sim.process import PARK, SimProcess

__all__ = ["SimLock", "SimSemaphore", "SimCondition", "SimQueue", "SimBarrier"]


class SimLock:
    """FIFO mutex in virtual time."""

    def __init__(self, engine, name: str = "lock") -> None:
        self.engine = engine
        self.name = name
        self.owner: Optional[SimProcess] = None
        self._waiters: Deque[SimProcess] = deque()

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def acquire_g(self):
        proc = self.engine.require_process()
        if self.owner is None:
            self.owner = proc
            return
        if self.owner is proc:
            raise SynchronizationError(f"{proc} re-acquired non-recursive {self.name}")
        self._waiters.append(proc)
        yield PARK
        # We are resumed by release() after it made us the owner.

    def acquire(self) -> None:
        return self.engine.kernel(self.acquire_g())

    def release(self) -> None:
        proc = self.engine.require_process()
        if self.owner is not proc:
            raise SynchronizationError(
                f"{proc} released {self.name} owned by {self.owner}")
        if self._waiters:
            nxt = self._waiters.popleft()
            self.owner = nxt
            nxt.wake()
        else:
            self.owner = None

    def __enter__(self) -> "SimLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class SimSemaphore:
    """Counting semaphore; FIFO wakeups."""

    def __init__(self, engine, value: int = 0, name: str = "sem") -> None:
        if value < 0:
            raise SimulationError("semaphore value must be >= 0")
        self.engine = engine
        self.name = name
        self._value = value
        self._waiters: Deque[SimProcess] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire_g(self):
        proc = self.engine.require_process()
        if self._value > 0:
            self._value -= 1
            return
        self._waiters.append(proc)
        yield PARK

    def acquire(self) -> None:
        return self.engine.kernel(self.acquire_g())

    def release(self, n: int = 1) -> None:
        for _ in range(n):
            if self._waiters:
                self._waiters.popleft().wake()
            else:
                self._value += 1


class SimCondition:
    """Condition variable associated with a :class:`SimLock`.

    Semantics follow POSIX: :meth:`wait` atomically releases the lock and
    blocks; :meth:`signal`/:meth:`broadcast` move waiters to the lock queue.
    """

    def __init__(self, engine, lock: Optional[SimLock] = None, name: str = "cond") -> None:
        self.engine = engine
        self.name = name
        self.lock = lock if lock is not None else SimLock(engine, name + ".lock")
        self._waiters: Deque[SimProcess] = deque()

    def wait_g(self):
        proc = self.engine.require_process()
        if self.lock.owner is not proc:
            raise SynchronizationError(f"wait on {self.name} without holding its lock")
        self._waiters.append(proc)
        self.lock.release()
        yield PARK
        yield from self.lock.acquire_g()

    def wait(self) -> None:
        return self.engine.kernel(self.wait_g())

    def signal(self) -> None:
        if self._waiters:
            self._waiters.popleft().wake()

    def broadcast(self) -> None:
        while self._waiters:
            self._waiters.popleft().wake()


class SimQueue:
    """Unbounded FIFO message queue; ``get`` blocks in virtual time.

    The messaging layer delivers into per-node queues through this class, so
    message arrival order is the deterministic network-delivery order.
    """

    def __init__(self, engine, name: str = "queue") -> None:
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[SimProcess] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self._items.append(item)
        if self._getters:
            self._getters.popleft().wake()

    def get_g(self):
        proc = self.engine.require_process()
        while not self._items:
            self._getters.append(proc)
            yield PARK
        return self._items.popleft()

    def get(self) -> Any:
        return self.engine.kernel(self.get_g())

    def try_get(self) -> Any:
        """Non-blocking get; returns ``None`` when empty."""
        if self._items:
            return self._items.popleft()
        return None


class SimBarrier:
    """N-party barrier in virtual time (kernel primitive, not the HAMSTER
    barrier — the HAMSTER one layers consistency actions and network costs
    on top of semantics like these)."""

    def __init__(self, engine, parties: int, name: str = "barrier") -> None:
        if parties < 1:
            raise SimulationError("barrier needs >= 1 party")
        self.engine = engine
        self.parties = parties
        self.name = name
        self._waiting: List[SimProcess] = []
        self.generation = 0

    def wait_g(self):
        proc = self.engine.require_process()
        gen = self.generation
        self._waiting.append(proc)
        if len(self._waiting) == self.parties:
            self.generation += 1
            waiters, self._waiting = self._waiting, []
            for p in waiters:
                if p is not proc:
                    p.wake()
            return gen
        yield PARK
        return gen

    def wait(self) -> int:
        """Block until ``parties`` processes arrive; returns the generation
        index that completed."""
        return self.engine.kernel(self.wait_g())
