"""Structured event tracing for the simulation kernel.

A :class:`Tracer` collects :class:`TraceEvent` records (kind + timestamp +
free-form fields). Tracing is off by default — the benchmark harness keeps it
disabled; protocol tests switch it on to assert on message/fault sequences.

A ``capacity`` turns the tracer into a bounded ring buffer: the newest
``capacity`` events are retained, older ones are evicted in O(1), and the
:attr:`Tracer.dropped` counter records exactly how many were lost — long
chaos runs can keep a window of recent history without unbounded growth or
silent truncation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Collects trace events; supports filtering and live sinks."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        #: ring buffer of the newest ``capacity`` events (unbounded if None)
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        #: events evicted because the ring was full
        self.dropped = 0
        self._sinks: List[Callable[[TraceEvent], None]] = []
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the engine's clock so events carry virtual timestamps."""
        self._clock = clock

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        self._sinks.append(sink)

    def emit(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        ev = TraceEvent(time=self._clock(), kind=kind, fields=fields)
        if self.capacity is not None and len(self.events) == self.capacity:
            self.dropped += 1  # the deque evicts the oldest on append
        self.events.append(ev)
        for sink in self._sinks:
            sink(ev)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def matching(self, **fields: Any) -> List[TraceEvent]:
        out = []
        for e in self.events:
            if all(e.get(k) == v for k, v in fields.items()):
                out.append(e)
        return out

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
