"""Structured event tracing for the simulation kernel.

A :class:`Tracer` collects :class:`TraceEvent` records (kind + timestamp +
free-form fields). Tracing is off by default — the benchmark harness keeps it
disabled; protocol tests switch it on to assert on message/fault sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace record."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Tracer:
    """Collects trace events; supports filtering and live sinks."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self._sinks: List[Callable[[TraceEvent], None]] = []
        self._clock: Callable[[], float] = lambda: 0.0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the engine's clock so events carry virtual timestamps."""
        self._clock = clock

    def add_sink(self, sink: Callable[[TraceEvent], None]) -> None:
        self._sinks.append(sink)

    def emit(self, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        ev = TraceEvent(time=self._clock(), kind=kind, fields=fields)
        self.events.append(ev)
        if self.capacity is not None and len(self.events) > self.capacity:
            del self.events[0]
        for sink in self._sinks:
            sink(ev)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def matching(self, **fields: Any) -> List[TraceEvent]:
        out = []
        for e in self.events:
            if all(e.get(k) == v for k, v in fields.items()):
                out.append(e)
        return out

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def clear(self) -> None:
        self.events.clear()

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)
