"""Event-queue implementations for the engine.

Both queues order events by ``(when, seq)`` — virtual timestamp with a
monotonic sequence number breaking ties FIFO — and expose the same tiny
interface: ``push(when, seq, action)``, ``pop() -> (when, seq, action)``,
``len()``/truthiness. The engine owns ``seq``; pushing an event back
(the bounded-run path) re-uses its original sequence number, so ordering
is unaffected by the round trip.

:class:`HeapEventQueue` is the straightforward binary heap — the
pre-overhaul implementation, kept as the differential reference model
(``REPRO_ENGINE_QUEUE=heap``, and the dual-run mode of
:mod:`repro.bench.diffcheck`).

:class:`CalendarQueue` is a Brown-style calendar queue: events hash into
``nbuckets`` unsorted buckets by their integer *day* (``when / width``),
and pop scans days in order. Everything that decides ordering is exact:
each record stores its day as an integer computed once at push, the pop
scan compares ``(when, seq)`` tuples, and a full-year miss falls back to
a direct min search — so the pop order is identical to the heap's for
any input, bit for bit (the hypothesis suite and the golden runs both
enforce this). Popped records are recycled through a small slab
(free list) instead of being reallocated per event.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Tuple

__all__ = ["HeapEventQueue", "CalendarQueue", "make_queue"]

Event = Tuple[float, int, Callable[[], None]]


class HeapEventQueue:
    """The heapq reference model (exact pre-overhaul behaviour)."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(self, when: float, seq: int, action: Any) -> None:
        heapq.heappush(self._heap, (when, seq, action))

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def rewind(self, now: float) -> None:
        """No-op: the heap has no scan position to restore."""

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarQueue:
    """Bucketed O(1)-amortized event queue with exact (when, seq) order.

    Records are 4-slot lists ``[when, seq, action, day]``; ``day`` is the
    bucket-epoch integer ``int(when * 1/width)`` fixed at push time. The
    scan invariant (every live record's day is >= the last popped day,
    because virtual time never runs backwards) means a record qualifies
    for popping exactly when the scan reaches its own day — no float
    accumulation, no boundary rounding in the hot path.
    """

    __slots__ = ("_buckets", "_nbuck", "_width", "_inv_width", "_day",
                 "_lastprio", "_n", "_free")

    #: bucket-count floor; shrinks never go below this
    MIN_BUCKETS = 8
    #: slab capacity — recycled event records kept for reuse
    SLAB_LIMIT = 1024

    def __init__(self, nbuckets: int = 8, width: float = 1e-6) -> None:
        self._n = 0
        self._lastprio = 0.0
        self._free: List[list] = []
        self._setup(nbuckets, width, 0.0)

    def _setup(self, nbuckets: int, width: float, start: float) -> None:
        self._nbuck = nbuckets
        self._width = width
        self._inv_width = 1.0 / width
        self._buckets: List[List[list]] = [[] for _ in range(nbuckets)]
        self._day = int(start * self._inv_width)

    # ------------------------------------------------------------------ ops
    def push(self, when: float, seq: int, action: Any) -> None:
        day = int(when * self._inv_width)
        free = self._free
        if free:
            rec = free.pop()
            rec[0] = when
            rec[1] = seq
            rec[2] = action
            rec[3] = day
        else:
            rec = [when, seq, action, day]
        self._buckets[day % self._nbuck].append(rec)
        self._n += 1
        if self._n > (self._nbuck << 1):
            self._resize(self._nbuck << 1)

    def pop(self) -> Event:
        if not self._n:
            raise IndexError("pop from an empty CalendarQueue")
        nbuck = self._nbuck
        buckets = self._buckets
        day = self._day
        for _ in range(nbuck):
            bucket = buckets[day % nbuck]
            if bucket:
                best = None
                bi = -1
                for i, rec in enumerate(bucket):
                    if rec[3] <= day and (
                            best is None or rec[0] < best[0]
                            or (rec[0] == best[0] and rec[1] < best[1])):
                        best = rec
                        bi = i
                if best is not None:
                    self._day = day
                    return self._extract(bucket, bi, best)
            day += 1
        # Nothing within a whole year of buckets: the next event is far in
        # the future. Find the global (when, seq) minimum directly and jump
        # the scan to its day.
        best = None
        for bucket in buckets:
            for rec in bucket:
                if (best is None or rec[0] < best[0]
                        or (rec[0] == best[0] and rec[1] < best[1])):
                    best = rec
        assert best is not None
        self._day = best[3]
        bucket = buckets[best[3] % nbuck]
        for i, rec in enumerate(bucket):
            if rec is best:
                return self._extract(bucket, i, best)
        raise AssertionError("calendar queue bucket lost a record")

    def _extract(self, bucket: List[list], index: int, rec: list) -> Event:
        """Swap-remove ``rec`` from ``bucket``, recycle it, return the event."""
        last = bucket.pop()
        if index < len(bucket):
            bucket[index] = last
        self._n -= 1
        when, seq, action = rec[0], rec[1], rec[2]
        rec[2] = None  # drop the action reference while slabbed
        if len(self._free) < self.SLAB_LIMIT:
            self._free.append(rec)
        self._lastprio = when
        if self._n < (self._nbuck >> 2) and self._nbuck > self.MIN_BUCKETS:
            self._resize(self._nbuck >> 1)
        return when, seq, action

    # --------------------------------------------------------------- resize
    def _resize(self, nbuckets: int) -> None:
        live = [rec for bucket in self._buckets for rec in bucket]
        width = self._choose_width(live)
        self._setup(nbuckets, width, self._lastprio)
        inv = self._inv_width
        nbuck = self._nbuck
        buckets = self._buckets
        for rec in live:
            day = int(rec[0] * inv)
            rec[3] = day
            buckets[day % nbuck].append(rec)

    def _choose_width(self, live: List[list]) -> float:
        """Deterministic width estimate: spread the live events over about
        half the buckets. Keeps the current width when events are
        co-timed (span 0) or the estimate degenerates."""
        if len(live) < 2:
            return self._width
        lo = hi = live[0][0]
        for rec in live:
            when = rec[0]
            if when < lo:
                lo = when
            elif when > hi:
                hi = when
        span = hi - lo
        if not span > 0.0:
            return self._width
        width = 2.0 * span / len(live)
        # Floor the width so day integers stay modest even for extreme
        # timestamp spreads (a purely host-side concern).
        floor = abs(hi) * 1e-9
        if width < floor:
            width = floor
        if width > 0.0 and width != float("inf"):
            return width
        return self._width

    def rewind(self, now: float) -> None:
        """Restore the scan position after a bounded-run pushback.

        Popping advances the scan day to the popped event's day; when the
        engine pushes that event back (its timestamp exceeded ``until``)
        and later schedules *earlier* events from ``now``, the scan must
        restart no later than ``now``'s day or ordering would break. All
        remaining records sort at or after the pushed-back event, so
        rewinding to ``now`` re-establishes the scan invariant.
        """
        self._day = int(now * self._inv_width)
        if now < self._lastprio:
            self._lastprio = now

    # ------------------------------------------------------------- protocol
    def __len__(self) -> int:
        return self._n

    def __bool__(self) -> bool:
        return self._n > 0


def make_queue(kind: str):
    """Build an event queue by name (``"calendar"`` or ``"heap"``)."""
    if kind == "calendar":
        return CalendarQueue()
    if kind == "heap":
        return HeapEventQueue()
    raise ValueError(f"unknown event queue {kind!r}; "
                     f"expected 'calendar' or 'heap'")
