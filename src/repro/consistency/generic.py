"""Generic, user-centric consistency API (§6 future work).

    "...it would be preferable to include a fully generic and user-centric
    consistency API that includes a more formal mechanism for reasoning
    about memory consistency. [...] This will allow memory consistency
    implementations to be more easily verified, and will enable experiments
    with new, potentially application-specific consistency models."

Two pieces implement that direction:

:class:`HappensBefore`
    The formal mechanism: a happens-before analyzer over synchronization
    traces. Given a sequence of acquire/release/barrier events and a model
    name, it answers "is a write at point P *guaranteed* visible to a read
    at point Q?" by graph reachability over program-order and
    synchronizes-with edges. The sw-edge rule is exactly what
    distinguishes the models: release→acquire of the *same scope* (scope/
    entry consistency) vs release→any later acquire (release consistency)
    vs every event ordered (sequential). Tests use it to verify the model
    implementations against the lattice.

:class:`ConsistencyContract`
    The user-centric API: applications declare *visibility requirements*
    ("writes under scope X must be visible to readers of scope Y") instead
    of picking a named model. :meth:`ConsistencyContract.compile` checks
    each requirement against a substrate and produces an executable
    application-specific model that inserts the cheapest sufficient
    enforcement (nothing where the substrate already guarantees it, a
    flush-at-release where it does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.consistency.models import ConsistencyModel, strength
from repro.errors import ConsistencyError

__all__ = ["SyncEvent", "HappensBefore", "Requirement", "ConsistencyContract",
           "ContractModel"]

#: scope id used for barrier events (the global scope)
GLOBAL_SCOPE = -1


@dataclass(frozen=True)
class SyncEvent:
    """One synchronization event in a trace."""

    kind: str          # "acquire" | "release" | "barrier"
    rank: int
    scope: int         # GLOBAL_SCOPE for barriers
    seq: int           # global issue order (deterministic in the simulator)

    def __post_init__(self) -> None:
        if self.kind not in ("acquire", "release", "barrier"):
            raise ConsistencyError(f"unknown sync event kind {self.kind!r}")


class HappensBefore:
    """Happens-before reachability for a synchronization trace under a
    named consistency model."""

    def __init__(self, model: str) -> None:
        self.model = model
        self.rank_order = strength(model)
        self._events: List[SyncEvent] = []

    def add(self, kind: str, rank: int, scope: int = GLOBAL_SCOPE) -> SyncEvent:
        ev = SyncEvent(kind=kind, rank=rank, scope=scope, seq=len(self._events))
        self._events.append(ev)
        return ev

    # ------------------------------------------------------------ sw edges
    def _synchronizes_with(self, rel: SyncEvent, acq: SyncEvent) -> bool:
        """Does ``rel`` (a release/barrier) pass visibility to ``acq``?"""
        if acq.seq <= rel.seq:
            return False
        if rel.kind == "barrier" and acq.kind == "barrier":
            return True  # barriers are global release+acquire pairs
        if self.model == "sequential" or self.model == "processor":
            # Strong models: every pair of sync events is ordered (the
            # hardware keeps a single write order).
            return True
        if rel.kind != "release" and rel.kind != "barrier":
            return False
        if acq.kind != "acquire" and acq.kind != "barrier":
            return False
        if self.model == "release":
            return True  # any release -> any later acquire
        # scope / entry: only the same scope synchronizes (barriers are the
        # global scope and match everything).
        return (rel.scope == acq.scope or rel.kind == "barrier"
                or acq.kind == "barrier")

    # --------------------------------------------------------- reachability
    def guaranteed_visible(self, write_rank: int, write_seq: int,
                           read_rank: int, read_seq: int) -> bool:
        """Is a write issued by ``write_rank`` just after trace position
        ``write_seq`` guaranteed visible to a read by ``read_rank`` just
        after position ``read_seq``?

        True iff there is a chain: program order to some release by the
        writer, synchronizes-with edges (possibly through intermediate
        ranks), and program order from an acquire by the reader.
        """
        if write_rank == read_rank:
            return write_seq <= read_seq  # program order
        # BFS over (rank, seq) "knowledge" states: rank r knows the write
        # as of trace position s.
        events = self._events
        frontier: List[Tuple[int, int]] = [(write_rank, write_seq)]
        known: Dict[int, int] = {write_rank: write_seq}
        while frontier:
            rank, seq = frontier.pop()
            for rel in events:
                if rel.rank != rank or rel.seq < seq:
                    continue
                if rel.kind not in ("release", "barrier"):
                    continue
                for acq in events:
                    if acq.kind not in ("acquire", "barrier"):
                        continue
                    if not self._synchronizes_with(rel, acq):
                        continue
                    if acq.rank in known and known[acq.rank] <= acq.seq:
                        continue
                    known[acq.rank] = acq.seq
                    frontier.append((acq.rank, acq.seq))
        return read_rank in known and known[read_rank] <= read_seq

    def __len__(self) -> int:
        return len(self._events)


@dataclass(frozen=True)
class Requirement:
    """One visibility requirement: writes performed under ``writer_scope``
    must be visible to subsequent holders of ``reader_scope``."""

    writer_scope: int
    reader_scope: int

    @property
    def same_scope(self) -> bool:
        return self.writer_scope == self.reader_scope


@dataclass
class ContractReport:
    """How each requirement of a compiled contract is satisfied."""

    native: List[Requirement] = field(default_factory=list)
    enforced: List[Requirement] = field(default_factory=list)

    @property
    def fully_native(self) -> bool:
        return not self.enforced


class ContractModel(ConsistencyModel):
    """Executable application-specific model produced by a contract."""

    name = "contract"

    def __init__(self, dsm, enforce_scopes: FrozenSet[int]) -> None:
        # Contracts sit outside the named lattice: visibility is exactly
        # what the requirements say. free_ride computed manually below.
        self.dsm = dsm
        self.native = dsm.consistency_model()
        self.free_ride = not enforce_scopes
        #: scopes whose release must force global visibility
        self.enforce_scopes = enforce_scopes

    def acquire_g(self, scope: int):
        return self.dsm.lock_g(scope)

    def release_g(self, scope: int):
        if scope in self.enforce_scopes:
            # Cross-scope requirement on a scope-consistent substrate: make
            # the writes globally fetchable before the release is visible.
            yield from self.dsm.sync_consistency_g()
        yield from self.dsm.unlock_g(scope)

    def fence_g(self):
        return self.dsm.sync_consistency_g()


class ConsistencyContract:
    """Declarative set of visibility requirements."""

    def __init__(self, name: str = "contract") -> None:
        self.name = name
        self._requirements: List[Requirement] = []

    def require(self, writer_scope: int, reader_scope: Optional[int] = None
                ) -> "ConsistencyContract":
        """Writes under ``writer_scope`` must reach subsequent holders of
        ``reader_scope`` (defaults to the same scope). Chainable."""
        if reader_scope is None:
            reader_scope = writer_scope
        self._requirements.append(Requirement(writer_scope, reader_scope))
        return self

    @property
    def requirements(self) -> List[Requirement]:
        return list(self._requirements)

    # ------------------------------------------------------------- analysis
    def natively_satisfied(self, req: Requirement, substrate_model: str) -> bool:
        """Does a substrate with the given native model already guarantee
        ``req`` through its lock semantics alone?"""
        if strength(substrate_model) >= strength("release"):
            return True  # release-or-stronger: any release reaches any acquire
        # scope/entry substrates only pass same-scope visibility natively.
        return req.same_scope

    def compile(self, dsm) -> Tuple[ContractModel, ContractReport]:
        """Produce the cheapest executable model satisfying every
        requirement on ``dsm``, plus the verification report."""
        report = ContractReport()
        enforce: Set[int] = set()
        substrate = dsm.consistency_model()
        for req in self._requirements:
            if self.natively_satisfied(req, substrate):
                report.native.append(req)
            else:
                report.enforced.append(req)
                enforce.add(req.writer_scope)
        return ContractModel(dsm, frozenset(enforce)), report

    def verify_trace(self, hb: HappensBefore) -> List[Requirement]:
        """Check a recorded trace against the contract: returns the
        requirements for which the trace contains a release of the writer
        scope NOT guaranteed visible to a later acquire of the reader scope
        (empty list = trace consistent with the contract)."""
        violations: List[Requirement] = []
        events = hb._events
        for req in self._requirements:
            for rel in events:
                if rel.kind != "release" or rel.scope != req.writer_scope:
                    continue
                for acq in events:
                    if (acq.kind != "acquire" or acq.scope != req.reader_scope
                            or acq.seq <= rel.seq or acq.rank == rel.rank):
                        continue
                    if not hb.guaranteed_visible(rel.rank, rel.seq,
                                                 acq.rank, acq.seq):
                        violations.append(req)
                        break
                else:
                    continue
                break
        return violations
