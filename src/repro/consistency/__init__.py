"""The HAMSTER consistency API (§4.5).

Base architectures and programming models differ radically in their memory
consistency models. Two rules govern the mapping:

* a **weaker software model may always run on a stronger hardware model**
  (consistency models are lower bounds on coherence), and
* distributed substrates need the target model matched to their native
  relaxed scheme for efficiency.

This package provides the model descriptors, the strength lattice used for
those mapping decisions, and *optimized implementations of all widely used
models* (sequential, processor, release, scope, entry) in terms of the
substrate hooks of :class:`repro.dsm.base.GlobalMemorySystem`.
"""

from repro.consistency.models import (
    MODELS,
    ConsistencyModel,
    EntryConsistency,
    ProcessorConsistency,
    ReleaseConsistency,
    ScopeConsistency,
    SequentialConsistency,
    can_host,
    get_model,
    strength,
)

__all__ = [
    "ConsistencyModel",
    "SequentialConsistency",
    "ProcessorConsistency",
    "ReleaseConsistency",
    "ScopeConsistency",
    "EntryConsistency",
    "MODELS",
    "get_model",
    "strength",
    "can_host",
]
