"""Consistency model descriptors, the strength lattice, and optimized
implementations over the DSM substrate hooks.

Each model translates three abstract operations into substrate actions:

* ``acquire(dsm, scope)`` — entering a synchronized section,
* ``release(dsm, scope)`` — leaving it (making writes visible per model),
* ``fence(dsm)`` — a full, scope-free consistency point.

The substrate hooks available are ``dsm.lock/unlock`` (which carry the
substrate's *native* acquire/release semantics — e.g. scope-bound write
notices on JiaJia), ``dsm.sync_consistency`` (flush this rank's writes), and
``dsm.barrier``. Stronger-model-on-weaker-substrate gaps are closed with
extra flushes; weaker-on-stronger costs nothing extra (§4.5).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConsistencyError

__all__ = [
    "ConsistencyModel",
    "SequentialConsistency",
    "ProcessorConsistency",
    "ReleaseConsistency",
    "ScopeConsistency",
    "EntryConsistency",
    "MODELS",
    "get_model",
    "strength",
    "can_host",
]

#: Strength ranking: a substrate of strength S can host any programming
#: model of strength <= S without extra protocol work. (Entry < Scope <
#: Release < Processor < Sequential — each step promises visibility to a
#: strictly larger set of observers.)
_STRENGTH: Dict[str, int] = {
    "entry": 1,
    "scope": 2,
    "release": 3,
    "processor": 4,
    "sequential": 5,
}


def strength(model_name: str) -> int:
    """Lattice rank of a model name."""
    try:
        return _STRENGTH[model_name]
    except KeyError:
        raise ConsistencyError(
            f"unknown consistency model {model_name!r}; "
            f"known: {sorted(_STRENGTH)}") from None


def can_host(substrate_model: str, program_model: str) -> bool:
    """Can a substrate with native model ``substrate_model`` execute a
    program written for ``program_model`` without extra enforcement?

    "A weaker software model may always be mapped onto a stronger hardware
    model" — the converse needs the extra flushes the model implementations
    below insert.
    """
    return strength(substrate_model) >= strength(program_model)


class ConsistencyModel:
    """Base descriptor + implementation of one consistency model.

    Blocking operations follow the twin-kernel convention of
    :mod:`repro.sim.process`: subclasses override the ``*_g`` kernels; the
    blocking methods trampoline them through :meth:`Engine.kernel`.
    """

    name = "abstract"

    def __init__(self, dsm) -> None:
        self.dsm = dsm
        self.native = dsm.consistency_model()
        #: whether the substrate alone already guarantees this model
        self.free_ride = can_host(self.native, self.name)

    # Default implementations: ride the substrate's lock semantics and
    # strengthen with flushes where the lattice says the substrate is weaker.
    def acquire(self, scope: int) -> None:
        return self.dsm.engine.kernel(self.acquire_g(scope))

    def acquire_g(self, scope: int):
        """Generator kernel of :meth:`acquire` (``yield from`` it)."""
        return self.dsm.lock_g(scope)

    def release(self, scope: int) -> None:
        return self.dsm.engine.kernel(self.release_g(scope))

    def release_g(self, scope: int):
        """Generator kernel of :meth:`release` (``yield from`` it)."""
        return self.dsm.unlock_g(scope)

    def fence(self) -> None:
        """Full consistency point for this rank."""
        return self.dsm.engine.kernel(self.fence_g())

    def fence_g(self):
        """Generator kernel of :meth:`fence` (``yield from`` it)."""
        return self.dsm.sync_consistency_g()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} on {self.native}>"


class SequentialConsistency(ConsistencyModel):
    """Every synchronization point is a global fence. On hardware-coherent
    substrates this is (nearly) free; on DSMs it flushes eagerly at both
    ends of every section."""

    name = "sequential"

    def acquire_g(self, scope: int):
        yield from self.dsm.lock_g(scope)
        if not self.free_ride:
            yield from self.dsm.sync_consistency_g()

    def release_g(self, scope: int):
        if not self.free_ride:
            yield from self.dsm.sync_consistency_g()
        yield from self.dsm.unlock_g(scope)


class ProcessorConsistency(ConsistencyModel):
    """Writes of one processor seen in order by all (the SMP's native
    hardware model, §4.5). On DSMs we conservatively flush at release."""

    name = "processor"

    def release_g(self, scope: int):
        if not self.free_ride:
            yield from self.dsm.sync_consistency_g()
        yield from self.dsm.unlock_g(scope)


class ReleaseConsistency(ConsistencyModel):
    """Eager RC: a release makes this rank's writes visible before the next
    acquire of *any* lock. The substrate's unlock already flushes writes
    home on our DSMs; scope-consistent substrates additionally need the
    global-visibility step, approximated by a fence at release."""

    name = "release"

    def release_g(self, scope: int):
        if not self.free_ride and strength(self.native) < strength("release"):
            # ScC substrate: notices are lock-bound; force global visibility.
            yield from self.dsm.sync_consistency_g()
        yield from self.dsm.unlock_g(scope)


class ScopeConsistency(ConsistencyModel):
    """Scope consistency — writes in a critical section become visible only
    to later entrants of the *same* scope. JiaJia's native model; a pure
    pass-through there, and a free ride on anything stronger."""

    name = "scope"


class EntryConsistency(ConsistencyModel):
    """Entry consistency — data is explicitly bound to its guard. We carry
    the binding so that acquire can (on future substrates) limit fetches to
    the bound region; semantically it behaves like scope consistency here."""

    name = "entry"

    def __init__(self, dsm) -> None:
        super().__init__(dsm)
        self._bindings: Dict[int, list] = {}

    def bind(self, scope: int, region) -> None:
        """Associate a global region with a synchronization scope."""
        self._bindings.setdefault(scope, []).append(region)

    def bound_regions(self, scope: int) -> list:
        return list(self._bindings.get(scope, ()))


MODELS = {
    cls.name: cls
    for cls in (SequentialConsistency, ProcessorConsistency,
                ReleaseConsistency, ScopeConsistency, EntryConsistency)
}


def get_model(name: str, dsm) -> ConsistencyModel:
    """Instantiate the optimized implementation of ``name`` over ``dsm``."""
    try:
        cls = MODELS[name]
    except KeyError:
        raise ConsistencyError(
            f"unknown consistency model {name!r}; known: {sorted(MODELS)}") from None
    return cls(dsm)
