"""Active-message layer over a simulated interconnect.

Each node runs a daemon *message server* process. Incoming messages are
dispatched to handlers registered by kind; handlers execute in the server's
process context, so they can charge CPU time, touch memory, send further
messages, and defer replies — exactly like the communication thread /
SIGIO handler of a real SW-DSM system.

Two interaction styles:

* :meth:`ActiveMessageLayer.post` — one-way active message.
* :meth:`ActiveMessageLayer.rpc` — request/reply; the caller blocks in
  virtual time until the remote handler answers. Handlers answer either by
  returning a :class:`Reply` immediately or by stashing the message and
  calling :meth:`ActiveMessageLayer.reply` later (deferred grant — how the
  distributed lock manager queues contended requests).

Per-message *software stack* cost is a constructor parameter: the coalesced
HAMSTER channel is cheaper per message than a stand-alone DSM stack
(§3.3 / :mod:`repro.msg.coalesce`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import MessagingError
from repro.machine.interconnect import Message, Network
from repro.sim.process import SimProcess
from repro.sim.resources import SimQueue

__all__ = ["Reply", "Handler", "ActiveMessageLayer"]

#: Fixed size of the active-message header on the wire.
AM_HEADER_BYTES = 32


@dataclass
class Reply:
    """Immediate reply from a handler: payload + wire size."""

    payload: Any = None
    size: int = 0


#: Handler signature: ``handler(msg) -> Optional[Reply]``. Returning ``None``
#: for an RPC message defers the reply (handler must call ``reply()`` later).
Handler = Callable[[Message], Optional[Reply]]


class _PendingCall:
    """Sender-side state of one in-flight RPC."""

    __slots__ = ("caller", "result", "done")

    def __init__(self, caller: SimProcess) -> None:
        self.caller = caller
        self.result: Any = None
        self.done = False


class ActiveMessageLayer:
    """One messaging endpoint set spanning all nodes of a cluster."""

    def __init__(self, cluster, network: Optional[Network] = None,
                 stack_overhead: Optional[float] = None,
                 name: str = "am") -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.network = network if network is not None else cluster.network
        if self.network is None:
            raise MessagingError("active messages need a network (SMP has none)")
        self.name = name
        self.stack_overhead = (stack_overhead if stack_overhead is not None
                               else cluster.params.msg_stack_overhead())
        self._handlers: Dict[int, Dict[str, Handler]] = {
            n: {} for n in range(cluster.n_nodes)}
        self._queues: Dict[int, SimQueue] = {}
        self._servers: Dict[int, SimProcess] = {}
        self._tokens = itertools.count(1)
        self._pending: Dict[int, _PendingCall] = {}
        # kind-prefix -> per-message stack overhead; lets a "separate stack"
        # channel (native DSM deployment) coexist with the cheaper coalesced
        # HAMSTER channel on the same wire (see repro.msg.coalesce).
        self._channel_overhead: Dict[str, float] = {}
        # ---------------------------------------------------- statistics
        self.posts = 0
        self.rpcs = 0
        for node_id in range(cluster.n_nodes):
            self._start_server(node_id)

    # ------------------------------------------------------------- servers
    def _start_server(self, node_id: int) -> None:
        q = SimQueue(self.engine, name=f"{self.name}.q{node_id}")
        self._queues[node_id] = q
        self.network.register_delivery(node_id, q.put)
        proc = SimProcess(self.engine, self._server_loop, args=(node_id, q),
                          name=f"{self.name}.srv{node_id}", daemon=True)
        proc.start()
        self._servers[node_id] = proc

    def _server_loop(self, proc: SimProcess, node_id: int, q: SimQueue) -> None:
        node = self.cluster.node(node_id)
        while True:
            msg = q.get()
            # Receiver-side software cost: NIC/stack + AM dispatch.
            node.cpu_time(self.network.receiver_cpu_overhead()
                          + self._overhead_for(msg.kind))
            if msg.is_reply:
                self._complete_rpc(msg)
                continue
            handler = self._handlers[node_id].get(msg.kind)
            if handler is None:
                raise MessagingError(
                    f"node {node_id}: no handler for message kind {msg.kind!r}")
            result = handler(msg)
            if result is not None and msg.rpc_token is not None:
                self.reply(msg, result.payload, result.size)

    def _complete_rpc(self, msg: Message) -> None:
        call = self._pending.pop(msg.rpc_token, None)
        if call is None:
            raise MessagingError(f"reply for unknown rpc token {msg.rpc_token}")
        call.result = msg.payload
        call.done = True
        call.caller.wake()

    # ------------------------------------------------------------ reg / send
    def register(self, node_id: int, kind: str, handler: Handler) -> None:
        """Install ``handler`` for messages of ``kind`` arriving at ``node_id``."""
        self._handlers[node_id][kind] = handler

    def register_all(self, kind: str, handler_factory: Callable[[int], Handler]) -> None:
        """Install ``handler_factory(node_id)`` as the handler on every node."""
        for node_id in range(self.cluster.n_nodes):
            self.register(node_id, kind, handler_factory(node_id))

    def set_channel_overhead(self, kind_prefix: str, overhead: float) -> None:
        """Assign a per-message software overhead to all message kinds that
        start with ``kind_prefix`` (longest prefix wins)."""
        self._channel_overhead[kind_prefix] = overhead

    def _overhead_for(self, kind: str) -> float:
        best: Optional[str] = None
        for prefix in self._channel_overhead:
            if kind.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is None:
            return self.stack_overhead
        return self._channel_overhead[best]

    def _charge_send(self, src: int, kind: str) -> None:
        self.cluster.node(src).cpu_time(
            self.network.sender_cpu_overhead() + self._overhead_for(kind))

    def post(self, src: int, dst: int, kind: str, payload: Any = None,
             size: int = 0) -> None:
        """One-way active message from ``src`` to ``dst``."""
        self.posts += 1
        self._charge_send(src, kind)
        self.network.send(Message(src=src, dst=dst, kind=kind,
                                  size=size + AM_HEADER_BYTES, payload=payload))

    def rpc(self, src: int, dst: int, kind: str, payload: Any = None,
            size: int = 0) -> Any:
        """Request/reply; blocks the calling process until the handler at
        ``dst`` answers. Returns the reply payload."""
        caller = self.engine.require_process()
        token = next(self._tokens)
        call = _PendingCall(caller)
        self._pending[token] = call
        self.rpcs += 1
        self._charge_send(src, kind)
        self.network.send(Message(src=src, dst=dst, kind=kind,
                                  size=size + AM_HEADER_BYTES, payload=payload,
                                  rpc_token=token))
        while not call.done:
            caller.suspend()
        return call.result

    def reply(self, request: Message, payload: Any = None, size: int = 0) -> None:
        """Answer an RPC ``request`` (immediately from its handler, or later
        from any process on the handling node — deferred grant)."""
        if request.rpc_token is None:
            raise MessagingError("reply() to a message that is not an rpc")
        self._charge_send(request.dst, request.kind)
        self.network.send(Message(src=request.dst, dst=request.src, kind="__reply__",
                                  size=size + AM_HEADER_BYTES, payload=payload,
                                  rpc_token=request.rpc_token, is_reply=True))
