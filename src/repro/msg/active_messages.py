"""Active-message layer over a simulated interconnect.

Each node runs a daemon *message server* process. Incoming messages are
dispatched to handlers registered by kind; handlers execute in the server's
process context, so they can charge CPU time, touch memory, send further
messages, and defer replies — exactly like the communication thread /
SIGIO handler of a real SW-DSM system.

Two interaction styles:

* :meth:`ActiveMessageLayer.post` — one-way active message.
* :meth:`ActiveMessageLayer.rpc` — request/reply; the caller blocks in
  virtual time until the remote handler answers. Handlers answer either by
  returning a :class:`Reply` immediately or by stashing the message and
  calling :meth:`ActiveMessageLayer.reply` later (deferred grant — how the
  distributed lock manager queues contended requests).

Per-message *software stack* cost is a constructor parameter: the coalesced
HAMSTER channel is cheaper per message than a stand-alone DSM stack
(§3.3 / :mod:`repro.msg.coalesce`).

Reliable mode
-------------

By default the layer assumes a perfect network (the paper's setting) and
adds **zero** cost or state. When a fault plan is active
(:mod:`repro.faults`), :meth:`ActiveMessageLayer.enable_reliability` arms an
acknowledged-datagram sublayer:

* every request, reply, and one-way post is tracked by the sender and
  retransmitted on a virtual-time timeout with exponential backoff, up to
  :class:`RetryPolicy` limits — then a typed
  :class:`~repro.errors.TimeoutError` surfaces (never a hang into
  ``DeadlockError``);
* receivers acknowledge every message and suppress duplicates by
  ``msg_id`` (retransmissions and wire duplicates alike), so handlers run
  exactly once;
* the failure detector (:mod:`repro.core.cluster_ctrl`) marks confirmed
  dead nodes via :meth:`ActiveMessageLayer.mark_node_failed`: their pending
  RPCs fail with :class:`~repro.errors.NodeFailedError` and new traffic to
  them is refused immediately.

Retransmission timers are engine events, not process activity — a server
handler that defers a reply blocks nothing, and the caller keeps waiting
(correct for contended-lock RPCs) as long as delivery itself is confirmed.
"""

from __future__ import annotations

import inspect
import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Set

from repro.errors import MessagingError, NodeFailedError, TimeoutError
from repro.machine.interconnect import Message, Network
from repro.sim.process import PARK, SimProcess
from repro.sim.resources import SimQueue

__all__ = ["Reply", "Handler", "RetryPolicy", "ActiveMessageLayer"]

#: Fixed size of the active-message header on the wire.
AM_HEADER_BYTES = 32

#: Reserved kind for delivery acknowledgements (reliable mode only).
ACK_KIND = "__ack__"
#: Wire size of an ack (tiny control frame; header only).
ACK_WIRE_BYTES = 16
#: Per-node bound on the duplicate-suppression window.
SEEN_WINDOW = 8192


@dataclass(frozen=True)
class RetryPolicy:
    """Retransmission parameters for reliable mode (virtual seconds)."""

    #: first retransmission timeout — a few Ethernet round trips
    timeout: float = 600e-6
    #: retransmissions before giving up with :class:`TimeoutError`
    max_retries: int = 10
    #: timeout multiplier per attempt
    backoff: float = 2.0

    def span(self) -> float:
        """Total virtual time covered before delivery is declared failed."""
        total, t = 0.0, self.timeout
        for _ in range(self.max_retries + 1):
            total += t
            t *= self.backoff
        return total


@dataclass
class Reply:
    """Immediate reply from a handler: payload + wire size."""

    payload: Any = None
    size: int = 0


#: Handler signature: ``handler(msg) -> Optional[Reply]``. Returning ``None``
#: for an RPC message defers the reply (handler must call ``reply()`` later).
#: A handler may instead be a generator function following the yield-point
#: contract of :mod:`repro.sim.process`; the server loop drives it inline
#: and its ``return`` value plays the same ``Optional[Reply]`` role.
Handler = Callable[[Message], Optional[Reply]]


class _PendingCall:
    """Sender-side state of one in-flight RPC."""

    __slots__ = ("caller", "result", "done", "dst", "req_id", "failed")

    def __init__(self, caller: SimProcess, dst: int = -1) -> None:
        self.caller = caller
        self.result: Any = None
        self.done = False
        self.dst = dst
        self.req_id: Optional[int] = None
        self.failed: Optional[BaseException] = None


class _Outstanding:
    """Sender-side state of one unacknowledged reliable message."""

    __slots__ = ("msg", "attempts", "timeout")

    def __init__(self, msg: Message, timeout: float) -> None:
        self.msg = msg
        self.attempts = 0
        self.timeout = timeout


class ActiveMessageLayer:
    """One messaging endpoint set spanning all nodes of a cluster."""

    def __init__(self, cluster, network: Optional[Network] = None,
                 stack_overhead: Optional[float] = None,
                 name: str = "am") -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.network = network if network is not None else cluster.network
        if self.network is None:
            raise MessagingError("active messages need a network (SMP has none)")
        self.name = name
        self.stack_overhead = (stack_overhead if stack_overhead is not None
                               else cluster.params.msg_stack_overhead())
        self._handlers: Dict[int, Dict[str, Handler]] = {
            n: {} for n in range(cluster.n_nodes)}
        self._queues: Dict[int, SimQueue] = {}
        self._servers: Dict[int, SimProcess] = {}
        self._tokens = itertools.count(1)
        self._pending: Dict[int, _PendingCall] = {}
        # kind-prefix -> per-message stack overhead; lets a "separate stack"
        # channel (native DSM deployment) coexist with the cheaper coalesced
        # HAMSTER channel on the same wire (see repro.msg.coalesce).
        self._channel_overhead: Dict[str, float] = {}
        # ------------------------------------------------ reliable mode
        # None -> perfect-network fast path: no acks, no timers, no state.
        self._reliable: Optional[RetryPolicy] = None
        self._outstanding: Dict[int, _Outstanding] = {}
        self._on_fail: Dict[int, Callable[[BaseException], None]] = {}
        self._seen: Dict[int, Set[int]] = {}
        self._seen_order: Dict[int, Deque[int]] = {}
        self._dead: Set[int] = set()
        # ---------------------------------------------------- statistics
        self.posts = 0
        self.rpcs = 0
        self.retries = 0
        self.acks_sent = 0
        self.dups_suppressed = 0
        self.delivery_failures = 0
        for node_id in range(cluster.n_nodes):
            self._start_server(node_id)

    # ------------------------------------------------------------- servers
    def _start_server(self, node_id: int) -> None:
        q = SimQueue(self.engine, name=f"{self.name}.q{node_id}")
        self._queues[node_id] = q
        self.network.register_delivery(node_id, q.put)
        proc = SimProcess(self.engine, self._server_loop, args=(node_id, q),
                          name=f"{self.name}.srv{node_id}", daemon=True)
        proc.start()
        self._servers[node_id] = proc

    def _server_loop(self, proc: SimProcess, node_id: int, q: SimQueue):
        # Generator-function body: the server runs stackless under the
        # generator engine backend and is trampolined by the thread backend.
        node = self.cluster.node(node_id)
        while True:
            msg = yield from q.get_g()
            if msg.kind == ACK_KIND:
                # Pure control frame: cancels the retransmission timer.
                self._outstanding.pop(msg.payload, None)
                self._on_fail.pop(msg.payload, None)
                continue
            # The handler span links back to the *sender's* span carried in
            # the message — the cross-rank edge of the causal tree. Work
            # here runs on this node's server, so it is attributed to this
            # node's resident rank, not the sender's.
            with self.engine.obs.span("am.handle", parent=msg.span_id,
                                      rank=node_id, node=node_id,
                                      msg=msg.kind, src=msg.src):
                # Receiver-side software cost: NIC/stack + AM dispatch.
                yield from node.cpu_time_g(self.network.receiver_cpu_overhead()
                                           + self._overhead_for(msg.kind))
                if self._reliable is not None and not self._accept(node_id, msg):
                    continue  # duplicate: acked again above, handler skipped
                if msg.is_reply:
                    self._complete_rpc(msg)
                    continue
                handler = self._handlers[node_id].get(msg.kind)
                if handler is None:
                    raise MessagingError(
                        f"node {node_id}: no handler for message kind {msg.kind!r}")
                result = handler(msg)
                if inspect.isgenerator(result):
                    # Generator handler: run it inline on the server's
                    # process context, exactly like a plain call.
                    result = yield from result
                if result is not None and msg.rpc_token is not None:
                    yield from self.reply_g(msg, result.payload, result.size)

    def _complete_rpc(self, msg: Message) -> None:
        call = self._pending.pop(msg.rpc_token, None)
        if call is None:
            if self._reliable is not None:
                return  # duplicate reply that slipped past dedup: harmless
            raise MessagingError(f"reply for unknown rpc token {msg.rpc_token}")
        if call.req_id is not None:
            # A reply is an implicit ack of the request it answers.
            self._outstanding.pop(call.req_id, None)
            self._on_fail.pop(call.req_id, None)
        call.result = msg.payload
        call.done = True
        call.caller.wake()

    # ------------------------------------------------------------ reg / send
    def register(self, node_id: int, kind: str, handler: Handler) -> None:
        """Install ``handler`` for messages of ``kind`` arriving at ``node_id``."""
        self._handlers[node_id][kind] = handler

    def register_all(self, kind: str, handler_factory: Callable[[int], Handler]) -> None:
        """Install ``handler_factory(node_id)`` as the handler on every node."""
        for node_id in range(self.cluster.n_nodes):
            self.register(node_id, kind, handler_factory(node_id))

    def set_channel_overhead(self, kind_prefix: str, overhead: float) -> None:
        """Assign a per-message software overhead to all message kinds that
        start with ``kind_prefix`` (longest prefix wins)."""
        self._channel_overhead[kind_prefix] = overhead

    def _overhead_for(self, kind: str) -> float:
        best: Optional[str] = None
        for prefix in self._channel_overhead:
            if kind.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is None:
            return self.stack_overhead
        return self._channel_overhead[best]

    def _charge_send_g(self, src: int, kind: str):
        return self.cluster.node(src).cpu_time_g(
            self.network.sender_cpu_overhead() + self._overhead_for(kind))

    def post_g(self, src: int, dst: int, kind: str, payload: Any = None,
               size: int = 0):
        """Generator kernel of :meth:`post` (``yield from`` it)."""
        obs = self.engine.obs
        with obs.span("am.post", msg=kind, src=src, dst=dst):
            self._check_dead(dst)
            self.posts += 1
            yield from self._charge_send_g(src, kind)
            msg = Message(src=src, dst=dst, kind=kind,
                          size=size + AM_HEADER_BYTES, payload=payload)
            if obs.enabled:
                # Stamp the causal origin before any fault injector can
                # defer the transmission into engine context.
                msg.span_id = obs.current_id()
            self.network.send(msg)
            if self._reliable is not None:
                # An undeliverable one-way message means protocol state is
                # lost for good: abort with a typed error, never corrupt.
                self._track(msg, self.engine._report_exception)

    def post(self, src: int, dst: int, kind: str, payload: Any = None,
             size: int = 0) -> None:
        """One-way active message from ``src`` to ``dst``."""
        return self.engine.kernel(self.post_g(src, dst, kind, payload, size))

    def rpc_g(self, src: int, dst: int, kind: str, payload: Any = None,
              size: int = 0):
        """Generator kernel of :meth:`rpc` (``yield from`` it)."""
        caller = self.engine.require_process()
        obs = self.engine.obs
        with obs.span("am.rpc", msg=kind, src=src, dst=dst):
            self._check_dead(dst)
            token = next(self._tokens)
            call = _PendingCall(caller, dst=dst)
            self._pending[token] = call
            self.rpcs += 1
            yield from self._charge_send_g(src, kind)
            msg = Message(src=src, dst=dst, kind=kind,
                          size=size + AM_HEADER_BYTES, payload=payload,
                          rpc_token=token)
            if obs.enabled:
                msg.span_id = obs.current_id()
            self.network.send(msg)
            if self._reliable is not None:
                call.req_id = msg.msg_id

                def fail(exc: BaseException) -> None:
                    call.failed = exc
                    self._pending.pop(token, None)
                    call.caller.wake()

                self._track(msg, fail)
            # The reply-wait is the blocked share of the round trip — kept
            # as its own child span so critical-path attribution can split
            # protocol work from time spent parked.
            with obs.span("am.wait", msg=kind, dst=dst):
                while not call.done and call.failed is None:
                    yield PARK
            if call.failed is not None:
                raise call.failed
            return call.result

    def rpc(self, src: int, dst: int, kind: str, payload: Any = None,
            size: int = 0) -> Any:
        """Request/reply; blocks the calling process until the handler at
        ``dst`` answers. Returns the reply payload."""
        return self.engine.kernel(self.rpc_g(src, dst, kind, payload, size))

    def reply_g(self, request: Message, payload: Any = None, size: int = 0):
        """Generator kernel of :meth:`reply` (``yield from`` it)."""
        if request.rpc_token is None:
            raise MessagingError("reply() to a message that is not an rpc")
        yield from self._charge_send_g(request.dst, request.kind)
        msg = Message(src=request.dst, dst=request.src, kind="__reply__",
                      size=size + AM_HEADER_BYTES, payload=payload,
                      rpc_token=request.rpc_token, is_reply=True)
        if self.engine.obs.enabled:
            msg.span_id = self.engine.obs.current_id()
        self.network.send(msg)
        if self._reliable is not None and request.src not in self._dead:
            self._track(msg, self.engine._report_exception)

    def reply(self, request: Message, payload: Any = None, size: int = 0) -> None:
        """Answer an RPC ``request`` (immediately from its handler, or later
        from any process on the handling node — deferred grant)."""
        if request.rpc_token is None:
            # Validate before requiring process context, so misuse from
            # engine context still surfaces as a messaging error.
            raise MessagingError("reply() to a message that is not an rpc")
        return self.engine.kernel(self.reply_g(request, payload, size))

    # ------------------------------------------------------- reliable mode
    @property
    def reliable(self) -> bool:
        return self._reliable is not None

    def enable_reliability(self, policy: Optional[RetryPolicy] = None) -> RetryPolicy:
        """Arm acknowledged delivery, retransmission, and duplicate
        suppression. Idempotent; returns the active policy."""
        if self._reliable is None:
            self._reliable = policy if policy is not None else RetryPolicy()
        return self._reliable

    def _check_dead(self, dst: int) -> None:
        if self._reliable is not None and dst in self._dead:
            raise NodeFailedError(dst, "refusing to message a failed node")

    def mark_node_failed(self, node: int,
                         exc: Optional[BaseException] = None) -> None:
        """Failure-detector hook: declare ``node`` dead. Pending RPCs to it
        fail with :class:`NodeFailedError`; retransmissions to it stop; new
        traffic to it is refused at the send site."""
        if node in self._dead:
            return
        self._dead.add(node)
        for msg_id, rec in list(self._outstanding.items()):
            if rec.msg.dst == node:
                self._outstanding.pop(msg_id, None)
                self._on_fail.pop(msg_id, None)
        failure = exc if exc is not None else NodeFailedError(node)
        for token, call in list(self._pending.items()):
            if call.dst == node:
                self._pending.pop(token, None)
                call.failed = failure
                call.caller.wake()

    def failed_nodes(self) -> Set[int]:
        return set(self._dead)

    def _track(self, msg: Message, on_fail: Callable[[BaseException], None]) -> None:
        """Register ``msg`` for retransmission until acked (engine-event
        driven — never blocks the sending process)."""
        assert msg.msg_id is not None
        policy = self._reliable
        rec = _Outstanding(msg, policy.timeout)
        self._outstanding[msg.msg_id] = rec
        self._on_fail[msg.msg_id] = on_fail
        self.engine.schedule(rec.timeout,
                             lambda mid=msg.msg_id: self._retransmit(mid))

    def _retransmit(self, msg_id: int) -> None:
        rec = self._outstanding.get(msg_id)
        if rec is None:
            return  # acked (or cancelled) in the meantime
        policy = self._reliable
        if rec.msg.dst in self._dead:
            self._outstanding.pop(msg_id, None)
            self._on_fail.pop(msg_id, None)
            return  # mark_node_failed already surfaced the failure
        if rec.attempts >= policy.max_retries:
            self._outstanding.pop(msg_id, None)
            on_fail = self._on_fail.pop(msg_id)
            self.delivery_failures += 1
            self.engine.trace.emit("am.giveup", msg_kind=rec.msg.kind,
                                   dst=rec.msg.dst, msg_id=msg_id,
                                   attempts=rec.attempts)
            on_fail(TimeoutError(
                f"message {rec.msg.kind!r} to node {rec.msg.dst} undelivered "
                f"after {rec.attempts + 1} attempts"))
            return
        rec.attempts += 1
        rec.timeout *= policy.backoff
        self.retries += 1
        self.engine.trace.emit("am.retry", msg_kind=rec.msg.kind,
                               dst=rec.msg.dst, msg_id=msg_id,
                               attempt=rec.attempts)
        self.network.send(rec.msg)
        self.engine.schedule(rec.timeout,
                             lambda mid=msg_id: self._retransmit(mid))

    def _accept(self, node_id: int, msg: Message) -> bool:
        """Ack ``msg`` and decide whether its handler should run (False for
        duplicates — retransmissions and wire dups alike)."""
        self.acks_sent += 1
        self.network.send(Message(src=node_id, dst=msg.src, kind=ACK_KIND,
                                  size=ACK_WIRE_BYTES, payload=msg.msg_id))
        seen = self._seen.setdefault(node_id, set())
        if msg.msg_id in seen:
            self.dups_suppressed += 1
            self.engine.trace.emit("am.dup", node=node_id, msg_kind=msg.kind,
                                   msg_id=msg.msg_id)
            return False
        seen.add(msg.msg_id)
        order = self._seen_order.setdefault(node_id, deque())
        order.append(msg.msg_id)
        if len(order) > SEEN_WINDOW:
            seen.discard(order.popleft())
        return True
