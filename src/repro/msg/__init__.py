"""Unified messaging layer (active messages).

All internal communication in the framework — DSM protocol traffic, lock and
barrier management, thread-API command forwarding, and user-level external
messaging — flows through :class:`~repro.msg.active_messages.ActiveMessageLayer`.

The paper's §3.3 integration insight is modelled by
:mod:`repro.msg.coalesce`: HAMSTER merges the DSM's private messaging stack
and its own into one channel, paying the per-message software overhead once;
a *native* DSM deployment runs its own separate stack with higher
per-message cost.
"""

from repro.msg.active_messages import ActiveMessageLayer, Handler
from repro.msg.coalesce import MessagingFabric

__all__ = ["ActiveMessageLayer", "Handler", "MessagingFabric"]
