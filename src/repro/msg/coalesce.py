"""Messaging-stack integration (§3.3).

In a *native* deployment, the SW-DSM system (JiaJia) runs its own socket
messaging stack, and a framework layered above it would run a second one —
both competing for the interconnect and each paying full per-message
software cost. HAMSTER instead *coalesces* the two into a single channel
that serves the DSM protocol, the HAMSTER modules, and user-level external
messaging alike.

:class:`MessagingFabric` models both arrangements on one
:class:`~repro.msg.active_messages.ActiveMessageLayer`:

* ``integrated=True`` (HAMSTER): every channel pays the cheaper
  ``msg_stack_overhead_integrated`` per message.
* ``integrated=False`` (native): each channel pays the stand-alone
  ``msg_stack_overhead_separate`` per message.

This difference is the mechanism behind Figure 2's negative overhead bars:
the HAMSTER per-call cost is partially or fully bought back by cheaper
messaging.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.msg.active_messages import ActiveMessageLayer, Handler

__all__ = ["Channel", "MessagingFabric"]


class Channel:
    """A named logical channel over the shared active-message layer.

    Kinds are namespaced with the channel name, so independent subsystems
    (DSM protocol, lock manager, thread forwarding, user messaging) cannot
    collide.
    """

    def __init__(self, fabric: "MessagingFabric", name: str) -> None:
        self.fabric = fabric
        self.name = name
        self.layer = fabric.layer

    def _kind(self, kind: str) -> str:
        return f"{self.name}.{kind}"

    def register(self, node_id: int, kind: str, handler: Handler) -> None:
        self.layer.register(node_id, self._kind(kind), handler)

    def register_all(self, kind: str, handler_factory) -> None:
        for node_id in range(self.layer.cluster.n_nodes):
            self.layer.register(node_id, self._kind(kind), handler_factory(node_id))

    def post(self, src: int, dst: int, kind: str, payload: Any = None,
             size: int = 0) -> None:
        self.layer.post(src, dst, self._kind(kind), payload, size)

    def post_g(self, src: int, dst: int, kind: str, payload: Any = None,
               size: int = 0):
        return self.layer.post_g(src, dst, self._kind(kind), payload, size)

    def rpc(self, src: int, dst: int, kind: str, payload: Any = None,
            size: int = 0) -> Any:
        return self.layer.rpc(src, dst, self._kind(kind), payload, size)

    def rpc_g(self, src: int, dst: int, kind: str, payload: Any = None,
              size: int = 0):
        return self.layer.rpc_g(src, dst, self._kind(kind), payload, size)

    def reply(self, request, payload: Any = None, size: int = 0) -> None:
        self.layer.reply(request, payload, size)

    def reply_g(self, request, payload: Any = None, size: int = 0):
        return self.layer.reply_g(request, payload, size)


class MessagingFabric:
    """All messaging channels of one deployment, integrated or separate."""

    def __init__(self, cluster, integrated: bool = True,
                 network: Optional[object] = None) -> None:
        params = cluster.params
        self.integrated = integrated
        default = (params.msg_stack_overhead_integrated if integrated
                   else params.msg_stack_overhead_separate)
        self.layer = ActiveMessageLayer(cluster, network=network,
                                        stack_overhead=default)
        self._channels: dict = {}

    def channel(self, name: str, overhead: Optional[float] = None) -> Channel:
        """Open (or fetch) the logical channel ``name``.

        ``overhead`` pins a specific per-message stack cost for this channel
        (used by tests and ablations); by default the channel inherits the
        fabric-wide integrated/separate cost.
        """
        if name not in self._channels:
            ch = Channel(self, name)
            if overhead is not None:
                self.layer.set_channel_overhead(name + ".", overhead)
            self._channels[name] = ch
        return self._channels[name]

    @property
    def messages_sent(self) -> int:
        return self.layer.network.messages_sent

    @property
    def bytes_sent(self) -> int:
        return self.layer.network.bytes_sent
