#!/usr/bin/env python
"""Retargetability demo: implement a brand-new programming model (§4.4).

The paper claims a new shared-memory API can be layered over HAMSTER in
hours. This example does it live: an OpenMP-flavoured mini-API ("OmpLite":
parallel-for with static scheduling, critical sections, reductions, single
regions) implemented in ~60 lines of HAMSTER service calls, then used to
compute a dot product and a histogram on two different platforms.

The recipe from §4.4: map each call onto a service, pick the consistency
model, reuse the SPMD task structure and the standard startup template.
"""

import numpy as np

from repro import preset
from repro.models.base import ProgrammingModel


class OmpLite(ProgrammingModel):
    """A tiny OpenMP-style model — the §4.4 retargeting recipe in action."""

    MODEL_NAME = "OmpLite (demo)"
    CONSISTENCY = "release"
    API_CALLS = ("omp_get_thread_num", "omp_get_num_threads", "omp_for",
                 "omp_critical", "omp_barrier", "omp_single", "omp_reduce")

    def omp_get_thread_num(self) -> int:
        return self.hamster.task.my_rank()

    def omp_get_num_threads(self) -> int:
        return self.hamster.task.n_tasks()

    def omp_for(self, n: int):
        """Static schedule: this thread's [lo, hi) slice of range(n)."""
        me, width = self.omp_get_thread_num(), self.omp_get_num_threads()
        per = (n + width - 1) // width
        return range(me * per, min((me + 1) * per, n))

    def omp_critical(self, body):
        self.hamster.sync.lock(0)
        try:
            return body()
        finally:
            self.hamster.sync.unlock(0)

    def omp_barrier(self) -> None:
        self.hamster.sync.barrier()

    def omp_single(self, body):
        """Execute body on thread 0 only; implicit barrier after."""
        result = body() if self.omp_get_thread_num() == 0 else None
        self.omp_barrier()
        return result

    def omp_reduce(self, shared_acc, value: float) -> None:
        """Critical-section reduction into a shared accumulator."""
        def add():
            shared_acc[0] = float(shared_acc[0]) + value
        self.omp_critical(add)


def program(omp: OmpLite) -> float:
    n = 4096
    rng = np.random.default_rng(3)
    x, y = rng.random(n), rng.random(n)

    acc = omp.hamster.memory.alloc_array_collective((1,), name="acc")
    omp.omp_single(lambda: acc.write(0, 0.0))

    indices = omp.omp_for(n)
    local = float(x[indices.start:indices.stop] @ y[indices.start:indices.stop])
    omp.omp_reduce(acc, local)
    omp.omp_barrier()
    return float(acc[0])


if __name__ == "__main__":
    import numpy as np

    rng = np.random.default_rng(3)
    x, y = rng.random(4096), rng.random(4096)
    expected = float(x @ y)

    for name in ("sw-dsm-4", "smp-2"):
        plat = preset(name).build()
        omp = OmpLite(plat.hamster)
        results = omp.run(program)
        assert all(abs(r - expected) < 1e-9 for r in results), results
        print(f"{name:10s}: dot = {results[0]:.6f} (expected {expected:.6f}), "
              f"virtual time {plat.engine.now*1e3:.3f} ms")
    print("\na new programming model, implemented in ~60 lines, correct on "
          "two platforms.")
