#!/usr/bin/env python
"""Portability demo: one SOR solver, every platform, identical results.

This is the paper's §5.4 experiment in miniature: the *identical* benchmark
code (written against the JiaJia API subset) is executed on the SMP, the
SW-DSM Beowulf cluster, and the SCI hybrid-DSM cluster. Only the cluster
configuration changes between runs — here literally a config-file string —
and the numerical results agree bit for bit while the performance varies by
platform. The locality-optimized and unoptimized variants show which
platform depends on home placement (SW-DSM) and which shrugs it off
(hybrid).
"""

from repro.apps import run_sor
from repro.apps.common import merge_rank_results
from repro.config import loads
from repro.models.jiajia_api import JiaJiaApi

N = 256
ITERATIONS = 6

CONFIG_FILES = {
    "SMP (2 CPUs)": """
        [cluster]
        platform = smp
        nodes = 2
        [hamster]
        dsm = smp
    """,
    "SW-DSM (4 nodes, Ethernet)": """
        [cluster]
        platform = beowulf
        nodes = 4
        [hamster]
        dsm = jiajia
    """,
    "Hybrid DSM (4 nodes, SCI)": """
        [cluster]
        platform = sci
        nodes = 4
        [hamster]
        dsm = scivm
    """,
}


def run_on(config_text: str, locality: bool):
    plat = loads(config_text).build()
    api = JiaJiaApi(plat.hamster)
    results = api.run(lambda a: run_sor(a, n=N, iterations=ITERATIONS,
                                        locality=locality))
    merged = merge_rank_results(results)
    assert merged.verified, "SOR result diverged from the sequential reference"
    return merged


if __name__ == "__main__":
    print(f"red-black SOR, {N}x{N} grid, {ITERATIONS} iterations\n")
    header = f"{'platform':<30} {'optimized':>12} {'unoptimized':>12} {'checksum':>14}"
    print(header)
    print("-" * len(header))
    checksums = set()
    for name, config in CONFIG_FILES.items():
        opt = run_on(config, locality=True)
        unopt = run_on(config, locality=False)
        checksums.add((opt.checksum, unopt.checksum))
        print(f"{name:<30} {opt.phases['total']*1e3:>10.2f}ms "
              f"{unopt.phases['total']*1e3:>10.2f}ms {opt.checksum:>14.4f}")
    assert len(checksums) == 1, "platforms disagreed on the result!"
    print("\nidentical numerical results on every platform; only the "
          "configuration file changed.")
