#!/usr/bin/env python
"""Chaos tour: fault injection, masking, and crash detection (S17).

Three acts on the 2-node SW-DSM platform:

1. **Fault-free reference** — SOR runs clean; note checksum and runtime.
2. **Lossy wire** — the same SOR under a seeded plan dropping ~10% of all
   messages (plus duplicates and delays). The reliable messaging layer
   retries and dedupes; the result is bit-identical to act 1.
3. **Mid-run crash** — node 1 goes silent partway through the run. The
   heartbeat failure detector (watched live through the external
   monitoring system of §4.3) suspects, then confirms, and the run aborts
   with a typed ``NodeFailedError`` — observed cluster state, not a hang.

Every act is deterministic: re-running this script reproduces the exact
same drops, retries, detection times, and output.
"""

from repro.config import preset
from repro.errors import NodeFailedError
from repro.faults import FaultPlan, NodeCrash, run_chaos
from repro.tools.monitor import AttachedMonitor

SOR = {"n": 96, "iterations": 4}


def act1_reference():
    print("=" * 64)
    print("Act 1: fault-free reference run")
    print("=" * 64)
    res = run_chaos("sw-dsm-2", "sor", SOR, plan=None)
    print(res.summary())
    print()
    return res


def act2_lossy_wire(reference):
    print("=" * 64)
    print("Act 2: ~10% message loss, duplicates, delays (seed 42)")
    print("=" * 64)
    res = run_chaos("sw-dsm-2", "sor", SOR, plan=FaultPlan.seeded(42))
    print(res.summary())
    same = res.checksum == reference.checksum
    print(f"\nchecksum identical to fault-free run: {same}")
    assert same and res.verified, "retries must fully mask transient loss"
    print()


def act3_crash_mid_sor():
    print("=" * 64)
    print("Act 3: node 1 crashes at t=4ms, heartbeat detector watching")
    print("=" * 64)
    cfg = preset("sw-dsm-2")
    cfg.trace = True  # capture hb.suspect / hb.confirm event times
    cfg.faults = FaultPlan(seed=7, crashes=(NodeCrash(node=1, at=4e-3),))
    plat = cfg.build()
    monitor = AttachedMonitor(plat).attach()

    from repro.apps import get_app
    from repro.models.jiajia_api import JiaJiaApi

    api = JiaJiaApi(plat.hamster)
    try:
        api.run(lambda a: get_app("sor")(a, **SOR))
        raise AssertionError("the crash must abort the run")
    except NodeFailedError as exc:
        print(f"typed failure : {exc}")

    detector = plat.hamster.cluster_ctl.detector
    print(f"failed nodes  : {plat.hamster.cluster_ctl.failed_nodes()}")
    print(f"suspect events: "
          f"{[e.time for e in plat.engine.trace.of_kind('hb.suspect')]}")
    print(f"virtual time  : {plat.engine.now * 1e3:.3f} ms "
          f"(crash at 4.000 ms, interval {detector.interval * 1e3:.1f} ms)")
    print()
    print("observed through the external monitor (§4.3):")
    for counter in ("heartbeats_sent", "heartbeats_lost",
                    "nodes_suspected", "nodes_failed"):
        events = monitor.timeline("cluster", counter)
        final = events[-1].value if events else 0
        print(f"  cluster.{counter:18s} final={final:g} "
              f"({len(events)} live updates)")


def main():
    reference = act1_reference()
    act2_lossy_wire(reference)
    act3_crash_mid_sor()
    print("chaos tour complete.")


if __name__ == "__main__":
    main()
