#!/usr/bin/env python
"""Sweep tour: the parallel experiment fabric and its result cache.

Four acts over one small grid (3 platforms x 2 workloads):

1. **Cold sweep** — every cell is a miss; the grid executes and the
   records land in a content-addressed cache keyed by machine
   fingerprint + workload hash + fault-plan hash.
2. **Warm rerun** — the identical grid is 100% cache hits: zero
   simulated events, same canonical records byte-for-byte.
3. **Parallel parity** — the same grid through 2 worker processes
   produces records byte-identical to the serial path (the simulator
   is deterministic; only host wall-clock fields differ).
4. **Cache invalidation** — sweeping a machine-parameter override
   changes every touched cell's content address: the overridden cells
   miss and execute, the untouched axis stays a hit.

Run from the repository root::

    PYTHONPATH=src python examples/sweep_tour.py
"""

import shutil
import tempfile

from repro.fabric import (GridSpec, ResultCache, canonical_records_json,
                          run_sweep)

GRID = GridSpec(presets=("smp-2", "sw-dsm-2", "hybrid-2"),
                labels=("PI", "SOR"), scales=(0.05,), suite="tour")


def banner(text):
    print("=" * 64)
    print(text)
    print("=" * 64)


def show(result):
    counts = result.manifest.counts()
    print(f"cells   : {len(result.manifest.cells)} "
          f"({counts['hit']} hit / {counts['miss']} miss / "
          f"{counts['failed']} failed)")
    print(f"events  : {result.manifest.simulated_events()} simulated")
    for record in result.records[:3]:
        print(f"  {record['id']:24s} {record['virtual_seconds']:.6f} "
              "virtual s")
    print()


def main():
    cache_root = tempfile.mkdtemp(prefix="sweep-tour-")
    cache = ResultCache(cache_root)
    try:
        banner("Act 1: cold sweep — every cell executes")
        first = run_sweep(GRID, cache=cache)
        show(first)

        banner("Act 2: warm rerun — pure cache, zero simulation")
        second = run_sweep(GRID, cache=cache)
        show(second)
        assert second.manifest.all_cached(), "rerun must be pure hits"
        assert canonical_records_json(second.records) == \
            canonical_records_json(first.records)
        print("canonical records identical to act 1: True\n")

        banner("Act 3: parallel parity — 2 workers, fresh cache")
        par = run_sweep(GRID, workers=2, cache=ResultCache(
            tempfile.mkdtemp(prefix="sweep-tour-par-", dir=cache_root)))
        show(par)
        same = canonical_records_json(par.records) == \
            canonical_records_json(first.records)
        print(f"parallel records byte-identical to serial: {same}\n")
        assert same, "determinism must not depend on where cells run"

        banner("Act 4: an override axis invalidates exactly its cells")
        swept = GridSpec(presets=GRID.presets, labels=GRID.labels,
                         scales=GRID.scales, suite="tour",
                         overrides=({}, {"eth_latency": 120e-6}))
        third = run_sweep(swept, cache=cache)
        show(third)
        counts = third.manifest.counts()
        assert counts == {"hit": 6, "miss": 6, "failed": 0, "pending": 0}, counts
        print("baseline cells hit, overridden cells executed fresh.")
        print("\nsweep tour complete.")
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)


if __name__ == "__main__":
    main()
