#!/usr/bin/env python
"""Head-to-head DSM comparison inside one framework (the paper's §6 vision).

The paper argues HAMSTER's ability to host several DSM systems enables "a
direct and fair comparison among such systems", expecting results to depend
on application characteristics rather than crowning one winner. This
example performs that study on the reproduction: every Table 1 benchmark on
SW-DSM vs hybrid DSM vs SMP, with per-protocol statistics explaining *why*
each one wins where it does.
"""

from repro.bench.report import render_table
from repro.bench.runners import WORKLOADS, run_app_on
from repro.config import preset

SCALE = 0.25
LABELS = ["MatMult", "PI", "SOR opt", "SOR", "LU all", "WATER 288"]
PLATFORMS = ["sw-dsm-4", "hybrid-4"]


def main() -> None:
    rows = []
    explains = []
    for label in LABELS:
        wl = WORKLOADS[label]
        params = wl.params(SCALE)
        times = {}
        for plat_name in PLATFORMS:
            cfg = preset(plat_name)
            result = run_app_on(cfg, wl.app, **params)
            times[plat_name] = result.phases[wl.phase]
        winner = min(times, key=times.get)
        ratio = max(times.values()) / min(times.values())
        rows.append([label, round(times["sw-dsm-4"] * 1e3, 2),
                     round(times["hybrid-4"] * 1e3, 2),
                     winner, round(ratio, 2)])
        explains.append((label, params))

    print(render_table(
        ["bench", "sw-dsm (ms)", "hybrid (ms)", "winner", "ratio"],
        rows, title=f"DSM comparison, 4 nodes, scale={SCALE}"))

    print("\nwhy (protocol character per benchmark):")
    notes = {
        "MatMult": "bulk one-time distribution of B: page faults (SW) vs "
                   "streamed remote reads (hybrid)",
        "PI": "almost no communication: both pay only lock+barrier costs",
        "SOR opt": "owner-computes homes: boundary exchange only",
        "SOR": "cyclic homes: every sweep diffs remote pages home (SW) vs "
               "posted remote writes (hybrid)",
        "LU all": "rank-0 write-only init: fetch+twin+diff per page (SW) vs "
                  "write stream (hybrid)",
        "WATER 288": "lock-heavy force accumulation: manager round trips "
                     "(SW) vs remote atomics (hybrid)",
    }
    for label, _params in explains:
        print(f"  {label:>10}: {notes[label]}")


if __name__ == "__main__":
    main()
