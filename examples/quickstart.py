#!/usr/bin/env python
"""Quickstart: shared-memory "hello world" on a simulated cluster.

Allocates a shared matrix, has every rank fill its block, synchronizes at a
barrier, and reduces under a lock — the complete HAMSTER service tour in
thirty lines. Run it, then change ``PRESET`` to ``"hybrid-4"`` or
``"smp-2"``: the *same code* runs on every platform (the paper's §5.4
claim), only the performance changes.

Usage::

    python examples/quickstart.py [preset]
"""

import sys

import numpy as np

from repro import preset

PRESET = sys.argv[1] if len(sys.argv) > 1 else "sw-dsm-4"


def main(env):
    """SPMD body: runs once per rank, env carries rank + services."""
    n = 256
    rows = n // env.n_ranks

    # Collective allocation: all ranks call, all get the same global array.
    A = env.alloc_array((n, n), name="A")
    total = env.alloc_array((1,), name="total")

    # Each rank fills its row block (pure local writes under block homes).
    lo = env.rank * rows
    A[lo:lo + rows, :] = float(env.rank + 1)
    env.compute(2.0 * rows * n)          # charge the fill's FLOPs
    env.barrier()                        # make everything visible

    # Lock-protected global reduction.
    partial = float(A[lo:lo + rows, :].sum())
    env.lock(0)
    total[0] = float(total[0]) + partial
    env.unlock(0)
    env.barrier()

    return float(total[0])


if __name__ == "__main__":
    plat = preset(PRESET).build()
    print(f"platform: {plat.hamster.platform_description()}")
    results = plat.hamster.run_spmd(main)

    n, ranks = 256, plat.hamster.n_ranks
    expected = sum((r + 1) * (n // ranks) * n for r in range(ranks))
    assert all(r == expected for r in results), results
    print(f"every rank computed the global sum {results[0]:.0f} "
          f"(expected {expected})")
    print(f"virtual execution time: {plat.engine.now * 1e3:.3f} ms")
    stats = plat.dsm.stats(0)
    interesting = {k: v for k, v in stats.items() if v}
    print(f"rank 0 protocol statistics: {interesting}")
