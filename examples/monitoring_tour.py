#!/usr/bin/env python
"""Monitoring tour (§4.3): the three consumers of HAMSTER's statistics.

1. **The application** queries counters directly (circumventing the model
   layer's transparency) to see its own protocol behaviour.
2. **A run-time system** uses them for dynamic optimization — here, an
   adaptive routine that detects a bad home placement from the fetch/diff
   counters mid-run and re-allocates with a better distribution.
3. **An external monitor** attaches via subscription and logs live events
   without touching the application.
"""

import numpy as np

from repro import preset
from repro.memory.layout import block, single_home


def main() -> None:
    plat = preset("sw-dsm-4").build()
    h = plat.hamster

    # ---- consumer 3: external monitor attaches before the run
    log = []
    h.sync.stats.subscribe(
        lambda module, counter, value: log.append((module, counter, value)))

    def app(env):
        n = 128
        rows = n // env.n_ranks
        lo = env.rank * rows

        # Deliberately poor placement: everything homed on rank 0.
        A = env.alloc_array((n, n), name="bad",
                            distribution=single_home(0))
        for _ in range(3):
            A[lo:lo + rows, :] = float(env.rank)
            env.barrier()

        # ---- consumer 1: application inspects its own counters
        before = dict(h.memory.access_stats(env.rank))

        # ---- consumer 2: run-time system reacts to what it sees — it reads
        # every rank's counters (the monitoring services are global), so it
        # notices the remote ranks drowning in diff traffic even though the
        # home rank's own counters are clean.
        remote_work = sum(
            h.memory.access_stats(r)["diffs_created"]
            + h.memory.access_stats(r)["pages_fetched"]
            for r in range(env.n_ranks))
        decision = ("re-allocate with block placement" if remote_work > 10
                    else "keep placement")
        env.barrier()

        B = env.alloc_array((n, n), name="good", distribution=block())
        h.memory.reset_access_stats() if env.rank == 0 else None
        env.barrier()
        for _ in range(3):
            B[lo:lo + rows, :] = float(env.rank)
            env.barrier()
        after = dict(h.memory.access_stats(env.rank))
        return before, after, decision

    results = h.run_spmd(app)
    before, after, decision = results[1]

    print("per-rank protocol counters, rank 1:")
    print(f"  single-home placement: {before['diffs_created']} diffs, "
          f"{before['pages_fetched']} fetches, "
          f"{before['twins_created']} twins")
    print(f"  block placement:       {after['diffs_created']} diffs, "
          f"{after['pages_fetched']} fetches, "
          f"{after['twins_created']} twins")
    print(f"run-time system's decision after phase 1: {results[0][2]!r}")

    sync_events = [entry for entry in log if entry[1] == "barriers"]
    print(f"external monitor captured {len(log)} statistic updates, "
          f"{len(sync_events)} of them barrier counters")

    assert after["diffs_created"] < before["diffs_created"]
    print("\nowner-computes placement eliminated the diff traffic, exactly "
          "what the counters predicted.")


if __name__ == "__main__":
    main()
