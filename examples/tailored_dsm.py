#!/usr/bin/env python
"""Custom-tailored shared memory (§6): multi-DSM + consistency contracts.

The paper's closing vision, demonstrated end to end:

1. **Per-structure DSM selection** — one application places its read-mostly
   lookup table on the caching SW-DSM and its write-once result stream on
   the hybrid DSM's hardware path, within a single address space, and beats
   both single-mechanism configurations.
2. **Application-specific consistency** — instead of picking a named model,
   the application declares a visibility *contract* ("what the producer
   writes under lock 1 must be visible to consumers acquiring lock 2");
   the framework verifies which substrate guarantees it natively and
   compiles the cheapest enforcement where one does not.
"""

import numpy as np

from repro.config import ClusterConfig, preset
from repro.consistency.generic import ConsistencyContract
from repro.memory.layout import single_home

N = 8192
ITERATIONS = 6


def run_mixed(config, table_system=None, stream_system=None):
    plat = config.build()
    dsm = plat.dsm
    holders = {}

    def main(env):
        if env.rank == 0:
            if hasattr(dsm, "make_array_on"):
                holders["table"] = dsm.make_array_on(
                    table_system, (N,), name="table", distribution=single_home(0))
                holders["stream"] = dsm.make_array_on(
                    stream_system, (N,), name="stream", distribution=single_home(0))
            else:
                holders["table"] = dsm.make_array((N,), name="table",
                                                  distribution=single_home(0))
                holders["stream"] = dsm.make_array((N,), name="stream",
                                                   distribution=single_home(0))
            holders["table"][:] = 1.0
        env.barrier()
        table, stream = holders["table"], holders["stream"]
        chunk = N // env.n_ranks
        lo = env.rank * chunk
        acc = 0.0
        for it in range(ITERATIONS):
            acc += float(table[:].sum())        # read-mostly (cache-friendly)
            stream[lo:lo + chunk] = float(it)   # write stream (wire-friendly)
            env.compute(2.0 * N)
            env.barrier()
        return acc

    results = plat.hamster.run_spmd(main)
    assert len(set(results)) == 1
    return plat.engine.now


def demo_contracts() -> None:
    print("consistency contracts (producer under lock 1 -> consumer under lock 2):")
    contract = ConsistencyContract("pipeline").require(1, reader_scope=2)
    for name in ("sw-dsm-2", "hybrid-2", "smp-2"):
        plat = preset(name).build()
        model, report = contract.compile(plat.dsm)
        how = ("native substrate guarantee" if report.fully_native
               else f"enforced (flush at release of scopes {sorted(model.enforce_scopes)})")
        print(f"  {name:10s} native={plat.dsm.consistency_model():9s} -> {how}")


if __name__ == "__main__":
    times = {
        "pure SW-DSM   ": run_mixed(preset("sw-dsm-4")),
        "pure hybrid   ": run_mixed(preset("hybrid-4")),
        "custom-tailored": run_mixed(
            ClusterConfig(platform="sci", dsm="composite", nodes=4),
            table_system="jiajia", stream_system="scivm"),
    }
    print("read-mostly table + write stream, 4 nodes:")
    for name, t in times.items():
        print(f"  {name}: {t * 1e3:8.2f} ms")
    best = min(times, key=times.get)
    assert best == "custom-tailored", times
    print("the combined-mechanism configuration wins, as §6 predicted.\n")
    demo_contracts()
