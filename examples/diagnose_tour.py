#!/usr/bin/env python
"""Diagnose tour: reading a sharing diagnosis, clean vs false sharing.

Two acts on the 4-node SW-DSM platform, walking the full
``repro.obs.sharing`` pipeline (also reachable as ``python -m repro
diagnose``):

1. **PI — a clean pattern.** Every rank accumulates locally and folds
   its partial sum into one shared slot under a lock. The diagnosis
   shows the accumulator page changing writers, but classifies it as
   *true* sharing (all ranks write the same 8 bytes — that IS the
   communication), and points at the lock's wait profile instead. The
   fix for PI, if it needed one, would be algorithmic (a tree
   reduction), never padding.

2. **SOR — false sharing.** Without locality-aware placement, the red/
   black grid's row boundaries land mid-page: neighbouring ranks write
   *disjoint halves* of the same page, and home-based coherence bounces
   the whole page between them every iteration. The detector flags the
   boundary pages, names the offending ranks and byte ranges, and
   classifies them as *false* sharing — the padding/alignment fix the
   paper's locality annotations (and PR 5's span coalescing) exist for.

Both acts are deterministic: the reported pages, handoff counts, and
byte ranges reproduce exactly on every run.
"""

from repro.apps import get_app
from repro.apps.common import merge_rank_results
from repro.config import preset
from repro.models.jiajia_api import JiaJiaApi
from repro.obs import render_sharing_report, sharing_report


def diagnose(app, **params):
    """Run one app with the sharing recorder on; return its report."""
    cfg = preset("sw-dsm-4")
    cfg.sharing = True
    plat = cfg.build()
    api = JiaJiaApi(plat.hamster)
    fn = get_app(app)
    merged = merge_rank_results(api.run(lambda a: fn(a, **params)))
    assert merged.verified
    return sharing_report(plat.sharing,
                          platform_name=plat.hamster.platform_description(),
                          n_ranks=plat.dsm.n_procs,
                          page_size=plat.dsm.space.page_size,
                          min_alternations=2)


def act1_pi_clean():
    print("=" * 64)
    print("Act 1: PI — writer handoffs that are NOT false sharing")
    print("=" * 64)
    doc = diagnose("pi", intervals=1 << 14)
    print(render_sharing_report(doc))
    assert doc["false_sharing"]["pages"] == [], \
        "PI's accumulator is true sharing; padding would fix nothing"
    true_pages = [e for e in doc["ping_pong"]
                  if e["classification"] == "true"]
    assert true_pages, "the accumulator page must alternate writers"
    assert doc["hot_locks"], "the reduction lock must show a wait profile"
    print()
    print("reading : the accumulator page bounces, but every rank writes")
    print("          the SAME bytes — genuine communication. The lock's")
    print("          wait histogram is the real cost; restructure the")
    print("          reduction, don't pad the array.")
    print()


def act2_sor_false_sharing():
    print("=" * 64)
    print("Act 2: SOR — boundary pages falsely shared between neighbours")
    print("=" * 64)
    doc = diagnose("sor", n=128, iterations=4)
    print(render_sharing_report(doc))
    fs = doc["false_sharing"]
    assert fs["pages"], "SOR's row boundaries must flag as false sharing"
    print()
    print(f"reading : page(s) {fs['pages']} bounce between ranks "
          f"{fs['ranks']}")
    print("          with DISJOINT write ranges — the ranks never touch")
    print("          each other's data, only each other's page. Pad rows")
    print("          to page boundaries (or use the locality-aware SOR")
    print("          variant) and the handoffs disappear.")
    print()


if __name__ == "__main__":
    act1_pi_clean()
    act2_sor_false_sharing()
    print("tour complete: same detector, two verdicts — padding fixes")
    print("false sharing, only algorithms fix true sharing.")
