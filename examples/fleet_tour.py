#!/usr/bin/env python
"""Fleet tour: watching a sweep's worker fleet work.

``sweep_tour.py`` shows *what* the fabric computes; this tour shows
*how the fleet behaved while computing it*. Four acts over one grid:

1. **Flight recorder** — a parallel sweep with the structured event log
   enabled writes one JSONL line per cell/worker lifecycle transition;
   ``validate_events`` is the schema gate.
2. **Heartbeats** — workers report in-cell progress (engine events,
   virtual seconds) on a host-side cadence; the beats are in the log,
   and a timed-out cell records how far it got before the kill.
3. **Fleet report** — the log rolls up into per-worker utilization and
   events/sec, cache hit ratio, aggregate throughput, and an ETA; the
   same rollup exports as JSON, Prometheus text, and a Chrome trace
   with one track per worker.
4. **Determinism stays intact** — the observability layer is host-side
   only: canonical records with the log enabled are byte-identical to
   a silent run's.

Run from the repository root::

    PYTHONPATH=src python examples/fleet_tour.py
"""

import os
import shutil
import tempfile

from repro.fabric import (GridSpec, ResultCache, canonical_records_json,
                          read_events, run_sweep, validate_events)
from repro.obs.export import validate_chrome_trace
from repro.obs.fleet import FleetReport

GRID = GridSpec(presets=("smp-2", "sw-dsm-2", "hybrid-2"),
                labels=("PI", "SOR"), scales=(0.05,), suite="fleet-tour")


def banner(text):
    print("=" * 64)
    print(text)
    print("=" * 64)


def main():
    work = tempfile.mkdtemp(prefix="fleet-tour-")
    events_path = os.path.join(work, "events.jsonl")
    try:
        banner("Act 1: the flight recorder — a sweep with the event log")
        result = run_sweep(GRID, workers=2,
                           cache=ResultCache(os.path.join(work, "cache")),
                           events=events_path, heartbeat=0.02)
        errors = validate_events(events_path)
        print(f"cells    : {len(result.manifest.cells)}")
        print(f"events   : {len(result.event_log)} logged, "
              f"schema errors: {errors or 'none'}")
        assert errors == [], errors
        header, events = read_events(events_path)
        for ev in events[:6]:
            print(f"  t={ev['t']:<9.6f} {ev['kind']:<13} "
                  f"{ev.get('id', ev.get('worker', ''))}")
        print("  ...\n")

        banner("Act 2: heartbeats — in-cell progress in the stream")
        # The engine hook fires every few thousand dispatched events, so
        # beats need a cell big enough to cross that granularity.
        big = GridSpec(presets=("sw-dsm-4",), labels=("MatMult",),
                       scales=(0.5,), suite="fleet-tour-big")
        big_events = os.path.join(work, "big-events.jsonl")
        run_sweep(big, workers=2,
                  cache=ResultCache(os.path.join(work, "cache-big")),
                  events=big_events, heartbeat=0.01)
        _, big_log = read_events(big_events)
        beats = [e for e in big_log if e["kind"] == "heartbeat"]
        print(f"heartbeats seen: {len(beats)}")
        for beat in beats[:3]:
            data = beat["data"]
            print(f"  worker {beat['worker']} cell {beat['cell']}: "
                  f"{data['events_executed']} engine events, "
                  f"{data['virtual_seconds']:.6f}s virtual")
        assert beats, "a big cell must produce heartbeats"
        print("(a timed-out cell would record exactly these numbers "
              "at the kill)\n")

        banner("Act 3: the fleet report — utilization, throughput, ETA")
        report = FleetReport(header, events, records=result.records)
        print(report.render())
        trace = report.chrome_trace()
        trace_errors = validate_chrome_trace(trace)
        print(f"\nchrome trace: {len(trace['traceEvents'])} events on "
              f"{len(report.workers)} worker track(s), "
              f"validator: {trace_errors or 'ok'}")
        assert trace_errors == []
        print("prometheus sample:")
        for line in report.to_prometheus().splitlines():
            if line.startswith("repro_sweep_worker_utilization"):
                print(f"  {line}")
        print()

        banner("Act 4: observability never touches the simulation")
        silent = run_sweep(GRID, cache=ResultCache(
            os.path.join(work, "cache-silent")))
        same = canonical_records_json(silent.records) == \
            canonical_records_json(result.records)
        print(f"canonical records identical with/without the log: {same}")
        assert same, "the event log must stay host-side only"
        print("\nfleet tour complete.")
    finally:
        shutil.rmtree(work, ignore_errors=True)


if __name__ == "__main__":
    main()
